// CrackerColumn: selection cracking (CIDR 2007) plus the stochastic
// auxiliary-crack extension the tutorial's "improving convergence speed"
// topic refers to (Halim et al.'s DDC/MDD1R family).
//
// The column holds a cracked copy of the base data; every Select physically
// reorganizes at most the pieces its bounds fall into and registers the new
// cuts in the cracker index. Construction performs the base-column copy, so
// callers that model "first query pays the copy" (all benches here) simply
// construct lazily on first use.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "core/crack_ops.h"
#include "core/cracker_index.h"
#include "core/cut.h"
#include "index/scan.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/rng.h"

namespace aidx {

template <ColumnValue T>
class SegmentOrganizer;  // core/organizer.h; friend of CrackerColumn

/// Tuning knobs for a cracker column.
struct CrackerColumnOptions {
  /// Maintain a row-id array in tandem so results can reconstruct tuples.
  bool with_row_ids = true;
  /// Pieces of at most this many values are not cracked further; their
  /// qualifying subset is filtered by scanning (returned as edge ranges).
  /// 0 reproduces the original always-crack behaviour.
  std::size_t min_piece_size = 0;
  /// Stochastic cracking: when a piece larger than this would be cracked,
  /// first split it at a data-driven random pivot. 0 disables.
  std::size_t stochastic_threshold = 0;
  std::uint64_t stochastic_seed = 0x5DEECE66DULL;
  /// Partitioning kernel used by every crack this column performs (see
  /// core/crack_ops.h; tiny pieces always fall back to the branchy sweep).
  /// kAuto resolves to the host-calibrated kernel at the dispatch point.
  CrackKernel kernel = CrackKernel::kAuto;
  /// Piece size below which non-branchy kernels fall back to the branchy
  /// sweep; 0 = the calibrated process default (kernel_autotune).
  std::size_t predication_min_piece = 0;
};

/// Result of a cracked select. `core` positions all qualify; `edges` (at
/// most two, produced only when min_piece_size > 0) still require predicate
/// filtering.
struct CrackSelect {
  PositionRange core;
  std::array<PositionRange, 2> edges{};
  int num_edges = 0;
};

/// Counters describing the adaptation work a column has performed.
struct CrackerStats {
  std::size_t num_selects = 0;
  std::size_t num_crack_in_two = 0;
  std::size_t num_crack_in_three = 0;
  std::size_t num_stochastic_cracks = 0;
  std::size_t values_touched = 0;  // elements visited by crack passes
};

template <ColumnValue T>
class CrackerColumn {
 public:
  explicit CrackerColumn(std::span<const T> base, CrackerColumnOptions options = {})
      : options_(options),
        values_(base.begin(), base.end()),
        index_(base.size()),
        rng_(options.stochastic_seed) {
    if (options_.with_row_ids) {
      row_ids_.resize(values_.size());
      std::iota(row_ids_.begin(), row_ids_.end(), row_id_t{0});
    }
  }

  /// Adopts pre-existing arrays without copying (hybrid partitions hand
  /// their slices over this way). When `row_ids` is empty but the options
  /// ask for row ids, a 0..n-1 identity is generated.
  CrackerColumn(std::vector<T> values, std::vector<row_id_t> row_ids,
                CrackerColumnOptions options)
      : options_(options),
        values_(std::move(values)),
        row_ids_(std::move(row_ids)),
        index_(values_.size()),
        rng_(options.stochastic_seed) {
    if (options_.with_row_ids && row_ids_.empty()) {
      row_ids_.resize(values_.size());
      std::iota(row_ids_.begin(), row_ids_.end(), row_id_t{0});
    }
    AIDX_CHECK(!options_.with_row_ids || row_ids_.size() == values_.size())
        << "row-id array length mismatch";
  }

  AIDX_DEFAULT_MOVE_ONLY(CrackerColumn);

  /// Pre-seeds the column with 2^bits radix-cluster cuts: one counting-sort
  /// pass groups values by their position in [min, max], and every cluster
  /// boundary becomes a realized cut. This is the "radix" organization of
  /// the hybrid algorithms (PVLDB 2011): more active than a single crack,
  /// far cheaper than a full sort. Only valid on a fresh (uncracked) column.
  void SeedRadixClusters(int bits) {
    AIDX_CHECK(index_.num_cuts() == 0) << "radix seeding requires a fresh column";
    const std::size_t n = values_.size();
    if (n == 0 || bits <= 0) return;
    const std::size_t k = std::size_t{1} << bits;
    const auto [mn_it, mx_it] = std::minmax_element(values_.begin(), values_.end());
    const long double mn = static_cast<long double>(*mn_it);
    const long double mx = static_cast<long double>(*mx_it);
    if (!(mn < mx)) return;  // single distinct value: nothing to cluster
    const long double span = mx - mn;
    const auto bucket_of = [&](T v) {
      const auto b = static_cast<std::size_t>(
          (static_cast<long double>(v) - mn) / span * static_cast<long double>(k));
      return b >= k ? k - 1 : b;
    };
    std::vector<std::size_t> offsets(k + 1, 0);
    for (const T v : values_) ++offsets[bucket_of(v) + 1];
    for (std::size_t b = 0; b < k; ++b) offsets[b + 1] += offsets[b];
    std::vector<T> tmp(n);
    std::vector<row_id_t> tmp_rids(options_.with_row_ids ? n : 0);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    std::vector<T> bucket_min(k, T{});
    std::vector<bool> bucket_seen(k, false);
    for (std::size_t i = 0; i < n; ++i) {
      const T v = values_[i];
      const std::size_t b = bucket_of(v);
      tmp[cursor[b]] = v;
      if (options_.with_row_ids) tmp_rids[cursor[b]] = row_ids_[i];
      ++cursor[b];
      if (!bucket_seen[b] || v < bucket_min[b]) {
        bucket_min[b] = v;
        bucket_seen[b] = true;
      }
    }
    values_.swap(tmp);
    if (options_.with_row_ids) row_ids_.swap(tmp_rids);
    for (std::size_t b = 1; b < k; ++b) {
      if (!bucket_seen[b] || offsets[b] == 0) continue;
      index_.AddCut({bucket_min[b], CutKind::kLess}, offsets[b]);
    }
    stats_.values_touched += 2 * n;  // count pass + scatter pass
  }

  /// Frees the payload arrays (a hybrid partition whose every value has
  /// migrated to the final store calls this). The column must not be used
  /// afterwards except for destruction.
  void Release() {
    values_.clear();
    values_.shrink_to_fit();
    row_ids_.clear();
    row_ids_.shrink_to_fit();
    index_.Clear();
    index_.set_column_size(0);
  }

  /// Answers a range predicate, cracking the touched pieces as a side
  /// effect (the adaptive-indexing move). O(piece sizes touched).
  CrackSelect Select(const RangePredicate<T>& pred) {
    Status ignored;  // no context: the piece gate cannot fire errors
    return SelectImpl(pred, nullptr, &ignored);
  }

  /// Deadline/cancellation-aware Select: the context is checked once per
  /// piece-level crack. On expiry the walk stops BEFORE the next physical
  /// crack, so the index stays valid and every crack already performed is
  /// kept (incremental investment, never rolled back).
  Result<CrackSelect> Select(const RangePredicate<T>& pred, const QueryContext& ctx) {
    Status abort;
    CrackSelect out = SelectImpl(pred, &ctx, &abort);
    if (!abort.ok()) return abort;
    return out;
  }

  /// Count matching rows (cracks as a side effect).
  std::size_t Count(const RangePredicate<T>& pred) {
    return CountFrom(Select(pred), pred);
  }

  Result<std::size_t> Count(const RangePredicate<T>& pred, const QueryContext& ctx) {
    AIDX_ASSIGN_OR_RETURN(const CrackSelect sel, Select(pred, ctx));
    return CountFrom(sel, pred);
  }

  /// Sum of matching values (cracks as a side effect).
  long double Sum(const RangePredicate<T>& pred) {
    return SumFrom(Select(pred), pred);
  }

  Result<long double> Sum(const RangePredicate<T>& pred, const QueryContext& ctx) {
    AIDX_ASSIGN_OR_RETURN(const CrackSelect sel, Select(pred, ctx));
    return SumFrom(sel, pred);
  }

  /// Appends matching values to `out` in storage order.
  void MaterializeValues(const CrackSelect& sel, const RangePredicate<T>& pred,
                         std::vector<T>* out) const {
    out->insert(out->end(), values_.begin() + static_cast<std::ptrdiff_t>(sel.core.begin),
                values_.begin() + static_cast<std::ptrdiff_t>(sel.core.end));
    for (int i = 0; i < sel.num_edges; ++i) {
      ScanValues<T>(ValuesIn(sel.edges[i]), pred, out);
    }
  }

  /// Appends the row ids of matching values to `out`.
  void MaterializeRowIds(const CrackSelect& sel, const RangePredicate<T>& pred,
                         std::vector<row_id_t>* out) const {
    AIDX_CHECK(options_.with_row_ids) << "column built without row ids";
    out->insert(out->end(),
                row_ids_.begin() + static_cast<std::ptrdiff_t>(sel.core.begin),
                row_ids_.begin() + static_cast<std::ptrdiff_t>(sel.core.end));
    for (int i = 0; i < sel.num_edges; ++i) {
      const PositionRange e = sel.edges[i];
      for (std::size_t p = e.begin; p < e.end; ++p) {
        if (pred.Matches(values_[p])) out->push_back(row_ids_[p]);
      }
    }
  }

  // -- Parallel-layer primitives (striped piece latching) ------------------
  //
  // The partitioned column's kStripedPiece mode (docs/CONCURRENCY.md §4)
  // drives cracking through these instead of Select so that the physical
  // permutation of one piece and the index mutation that publishes it can
  // be protected by different latches. They deliberately touch neither the
  // cracker index nor the stats: the caller owns exclusive access to the
  // piece's position range while permuting, serializes RegisterCut against
  // every other index access, and accounts the work itself.
  // src/parallel/partitioned_cracker_column.h is the only intended caller.

  /// Physically partitions [piece.begin, piece.end) around `cut` with the
  /// column's kernel and returns the absolute split position. Registers
  /// nothing: pair with RegisterCut.
  std::size_t CrackPieceAt(const PieceInfo<T>& piece, const Cut<T>& cut) {
    (void)failpoints::crack_piece.Inject();  // delay-only: no Status path here
    return piece.begin +
           CrackInTwo<T>(MutableValuesIn({piece.begin, piece.end}),
                         MutableRowIdsIn({piece.begin, piece.end}), cut,
                         options_.kernel, options_.predication_min_piece);
  }

  /// Three-way variant: partitions the piece around both cuts at once and
  /// returns piece-relative split offsets (same contract as CrackInThree).
  ThreeWaySplit CrackPieceInThreeAt(const PieceInfo<T>& piece,
                                    const Cut<T>& lo_cut, const Cut<T>& hi_cut) {
    (void)failpoints::crack_piece.Inject();  // delay-only: no Status path here
    return CrackInThree<T>(MutableValuesIn({piece.begin, piece.end}),
                           MutableRowIdsIn({piece.begin, piece.end}), lo_cut,
                           hi_cut, options_.kernel,
                           options_.predication_min_piece);
  }

  /// Publishes a cut realized through CrackPieceAt/CrackPieceInThreeAt.
  void RegisterCut(const Cut<T>& cut, std::size_t position) {
    index_.AddCut(cut, position);
  }

  /// Occurrences of `value` inside [range.begin, range.end). The striped
  /// write path's delete probe counts live occurrences across the resolved
  /// core and edge pieces with this, under shared stripe latches only — it
  /// reads, never permutes.
  std::size_t CountEqualIn(PositionRange range, T value) const {
    std::size_t hits = 0;
    for (std::size_t i = range.begin; i < range.end; ++i) {
      hits += values_[i] == value ? 1 : 0;
    }
    return hits;
  }
  // ------------------------------------------------------------------------

  std::span<const T> values() const { return values_; }
  std::span<const row_id_t> row_ids() const { return row_ids_; }
  std::size_t size() const { return values_.size(); }
  const CrackerIndex<T>& index() const { return index_; }
  const CrackerStats& stats() const { return stats_; }
  const CrackerColumnOptions& options() const { return options_; }

  /// Full invariant sweep: every piece's values satisfy its bound cuts and
  /// the index itself validates. O(n); tests only.
  bool ValidatePieces() const {
    if (!index_.Validate()) return false;
    if (index_.column_size() != values_.size()) return false;
    bool ok = true;
    index_.VisitPieces([&](const PieceInfo<T>& piece) {
      for (std::size_t i = piece.begin; i < piece.end && ok; ++i) {
        const T v = values_[i];
        if (piece.lower && piece.lower->Below(v)) ok = false;
        if (piece.upper && !piece.upper->Below(v)) ok = false;
      }
    });
    return ok;
  }

 protected:
  // The update pipeline (update/updatable_column.h) and the segment
  // organizer (core/organizer.h) manipulate the raw arrays and index
  // directly; nobody else should.
  template <ColumnValue U>
  friend class SegmentOrganizer;

  std::vector<T>& mutable_values() { return values_; }
  std::vector<row_id_t>& mutable_row_ids() { return row_ids_; }
  CrackerIndex<T>& mutable_index() { return index_; }
  CrackerStats& mutable_stats() { return stats_; }

 private:
  std::span<const T> ValuesIn(PositionRange r) const {
    return std::span<const T>(values_).subspan(r.begin, r.end - r.begin);
  }
  std::span<T> MutableValuesIn(PositionRange r) {
    return std::span<T>(values_).subspan(r.begin, r.end - r.begin);
  }
  std::span<row_id_t> MutableRowIdsIn(PositionRange r) {
    if (!options_.with_row_ids) return {};
    return std::span<row_id_t>(row_ids_).subspan(r.begin, r.end - r.begin);
  }

  bool PieceBelowThreshold(const PieceInfo<T>& piece) const {
    return options_.min_piece_size > 0 &&
           piece.end - piece.begin <= options_.min_piece_size;
  }

  /// Piece-granularity robustness gate, evaluated immediately before each
  /// physical crack: deadline/cancellation first (one relaxed load; a
  /// clock read only when a deadline is set), then the crack.piece
  /// failpoint. Injected errors surface only when a context is present —
  /// ctx-free callers cannot propagate Status, so for them the failpoint
  /// is delay-only.
  Status PieceGate(const QueryContext* ctx) {
    if (ctx != nullptr) AIDX_RETURN_NOT_OK(ctx->Check());
    Status injected = failpoints::crack_piece.Inject();
    if (AIDX_PREDICT_FALSE(!injected.ok()) && ctx != nullptr) return injected;
    return Status::OK();
  }

  /// Shared body of both Select overloads. On a gate failure `*abort` is
  /// set and the walk stops before the next physical crack; the partial
  /// CrackSelect returned is meaningless to the caller, but every crack
  /// already registered stays — the index remains ValidatePieces-clean.
  CrackSelect SelectImpl(const RangePredicate<T>& pred, const QueryContext* ctx,
                         Status* abort) {
    ++stats_.num_selects;
    CrackSelect out;
    if (pred.DefinitelyEmpty()) return out;

    const PredicateCuts<T> cuts = CutsForPredicate(pred);
    if (cuts.has_lower && cuts.has_upper) {
      // Both bounds: maybe a single crack-in-three when both cuts land in
      // one piece and neither is realized yet.
      const CutLookup<T> lo = index_.Lookup(cuts.lower);
      const CutLookup<T> hi = index_.Lookup(cuts.upper);
      // Oversized pieces skip this path so stochastic pre-cracking (which
      // lives in ResolveCut) can subdivide them per bound.
      const bool too_big_for_three =
          options_.stochastic_threshold != 0 &&
          lo.piece.end - lo.piece.begin > options_.stochastic_threshold;
      if (!lo.exact && !hi.exact && lo.piece.begin == hi.piece.begin &&
          lo.piece.end == hi.piece.end && !too_big_for_three &&
          !PieceBelowThreshold(lo.piece)) {
        ResolveBothInPiece(cuts.lower, cuts.upper, lo.piece, &out, ctx, abort);
        return out;
      }
    }
    std::size_t begin = 0;
    std::size_t end = values_.size();
    if (cuts.has_lower) {
      begin = ResolveCut(cuts.lower, /*is_lower=*/true, &out, ctx, abort);
      if (AIDX_PREDICT_FALSE(!abort->ok())) return out;
    }
    if (cuts.has_upper) {
      end = ResolveCut(cuts.upper, /*is_lower=*/false, &out, ctx, abort);
      if (AIDX_PREDICT_FALSE(!abort->ok())) return out;
    }
    if (end < begin) end = begin;
    out.core = {begin, end};
    DedupeEdges(&out);
    return out;
  }

  std::size_t CountFrom(const CrackSelect& sel, const RangePredicate<T>& pred) const {
    std::size_t count = sel.core.size();
    for (int i = 0; i < sel.num_edges; ++i) {
      count += ScanCount<T>(ValuesIn(sel.edges[i]), pred);
    }
    return count;
  }

  long double SumFrom(const CrackSelect& sel, const RangePredicate<T>& pred) const {
    long double sum = 0;
    for (std::size_t i = sel.core.begin; i < sel.core.end; ++i) sum += values_[i];
    for (int i = 0; i < sel.num_edges; ++i) {
      sum += ScanSum<T>(ValuesIn(sel.edges[i]), pred);
    }
    return sum;
  }

  /// Realizes `cut` (cracking if needed); returns its position. When the
  /// enclosing piece is below the crack threshold, records the piece as an
  /// edge instead and returns the conservative core boundary.
  std::size_t ResolveCut(const Cut<T>& cut, bool is_lower, CrackSelect* out,
                         const QueryContext* ctx, Status* abort) {
    CutLookup<T> look = index_.Lookup(cut);
    if (look.exact) return look.position;

    if (PieceBelowThreshold(look.piece)) {
      AddEdge(out, {look.piece.begin, look.piece.end});
      // Core excludes the whole undecided piece.
      return is_lower ? look.piece.end : look.piece.begin;
    }

    PieceInfo<T> piece = look.piece;
    MaybeStochasticPreCrack(cut, &piece, ctx, abort);
    if (AIDX_PREDICT_FALSE(!abort->ok())) {
      return is_lower ? piece.end : piece.begin;
    }
    if (Status gate = PieceGate(ctx); AIDX_PREDICT_FALSE(!gate.ok())) {
      *abort = std::move(gate);
      return is_lower ? piece.end : piece.begin;
    }

    const std::size_t split =
        piece.begin + CrackInTwo<T>(MutableValuesIn({piece.begin, piece.end}),
                                    MutableRowIdsIn({piece.begin, piece.end}), cut,
                                    options_.kernel,
                                    options_.predication_min_piece);
    ++stats_.num_crack_in_two;
    stats_.values_touched += piece.end - piece.begin;
    index_.AddCut(cut, split);
    return split;
  }

  /// Crack-in-three fast path: both cuts in one unrealized piece.
  void ResolveBothInPiece(const Cut<T>& lo_cut, const Cut<T>& hi_cut,
                          const PieceInfo<T>& piece, CrackSelect* out,
                          const QueryContext* ctx, Status* abort) {
    if (lo_cut == hi_cut) {
      // Degenerate (e.g. a < x <= a): realize one cut, empty core.
      const std::size_t pos = ResolveCut(lo_cut, /*is_lower=*/true, out, ctx, abort);
      out->core = {pos, pos};
      return;
    }
    if (Status gate = PieceGate(ctx); AIDX_PREDICT_FALSE(!gate.ok())) {
      *abort = std::move(gate);
      return;
    }
    const ThreeWaySplit split =
        CrackInThree<T>(MutableValuesIn({piece.begin, piece.end}),
                        MutableRowIdsIn({piece.begin, piece.end}), lo_cut, hi_cut,
                        options_.kernel, options_.predication_min_piece);
    ++stats_.num_crack_in_three;
    stats_.values_touched +=
        CrackInThreeValuesTouched(piece.end - piece.begin);
    const std::size_t lower_pos = piece.begin + split.lower_end;
    const std::size_t upper_pos = piece.begin + split.middle_end;
    index_.AddCut(lo_cut, lower_pos);
    index_.AddCut(hi_cut, upper_pos);
    out->core = {lower_pos, upper_pos};
  }

  /// Stochastic cracking: repeatedly split oversized pieces at a random
  /// data-driven pivot before the exact crack, so no query leaves a huge
  /// unorganized piece behind (fixes sequential-pattern degeneration).
  void MaybeStochasticPreCrack(const Cut<T>& target, PieceInfo<T>* piece,
                               const QueryContext* ctx, Status* abort) {
    if (options_.stochastic_threshold == 0) return;
    while (piece->end - piece->begin > options_.stochastic_threshold) {
      if (Status gate = PieceGate(ctx); AIDX_PREDICT_FALSE(!gate.ok())) {
        *abort = std::move(gate);
        return;
      }
      const std::size_t span_size = piece->end - piece->begin;
      const T pivot =
          values_[piece->begin + rng_.NextBounded(span_size)];
      const Cut<T> random_cut{pivot, CutKind::kLess};
      if (index_.Lookup(random_cut).exact || random_cut == target) break;
      const std::size_t split = piece->begin +
          CrackInTwo<T>(MutableValuesIn({piece->begin, piece->end}),
                        MutableRowIdsIn({piece->begin, piece->end}), random_cut,
                        options_.kernel, options_.predication_min_piece);
      ++stats_.num_stochastic_cracks;
      stats_.values_touched += span_size;
      index_.AddCut(random_cut, split);
      // All-duplicates (or extreme-pivot) pieces make no progress; stop.
      const bool no_progress = split == piece->begin || split == piece->end;
      // Continue inside the half that still contains the target cut.
      if (random_cut < target) {
        piece->begin = split;
        piece->lower = random_cut;
      } else {
        piece->end = split;
        piece->upper = random_cut;
      }
      if (no_progress) break;
    }
  }

  void AddEdge(CrackSelect* out, PositionRange edge) {
    if (edge.empty()) return;
    AIDX_CHECK(out->num_edges < 2);
    out->edges[static_cast<std::size_t>(out->num_edges)] = edge;
    ++out->num_edges;
  }

  void DedupeEdges(CrackSelect* out) {
    if (out->num_edges == 2 && out->edges[0] == out->edges[1]) out->num_edges = 1;
  }

  CrackerColumnOptions options_;
  std::vector<T> values_;
  std::vector<row_id_t> row_ids_;
  CrackerIndex<T> index_;
  CrackerStats stats_;
  Rng rng_;
};

}  // namespace aidx
