// Startup kernel calibration: a quick microbenchmark that picks the
// default CrackKernel and the branchy-fallback piece-size threshold for
// *this* host, per element width.
//
// The kernel shootout in bench_e12 shows the ranking of the crack kernels
// is hardware-dependent: the blocked kernels need wide vector units and a
// decent store pipeline to beat the branchy sweep, the SIMD kernel needs
// AVX2/NEON at all, and the piece size where predication starts paying for
// itself moves with the mispredict penalty. Rather than bake one machine's
// ranking into a constant, the first kAuto resolution (i.e. first engine
// use with default config) runs a ~few-millisecond sweep over the concrete
// kernels at two element widths, caches the winners process-wide, and
// derives the min-piece crossover from a piece-size sweep. Results are
// overridable per strategy via StrategyConfig::{crack_kernel,
// predication_min_piece} and the whole sweep can be disabled with
// AIDX_CALIBRATE=0 (or SetCalibrationEnabled(false)), which pins the
// documented fallback: kPredicatedUnrolled at kPredicationMinPiece.
#pragma once

#include <cstddef>

#include "core/crack_ops.h"

namespace aidx {

/// What the calibration sweep decided (or the fallbacks, when disabled).
/// Widths: w4 covers 4-byte elements (int32), w8 covers 8-byte elements
/// (int64 and float64 share it — same lane count, same move cost).
struct KernelCalibration {
  bool calibrated = false;       // false: fallback defaults are in force
  bool simd_available = false;   // SimdKernelAvailable() at sweep time
  const char* isa = "scalar";    // which vector ISA kSimd would use
  CrackKernel kernel_w4 = CrackKernel::kPredicatedUnrolled;
  CrackKernel kernel_w8 = CrackKernel::kPredicatedUnrolled;
  std::size_t min_piece_w4 = kPredicationMinPiece;
  std::size_t min_piece_w8 = kPredicationMinPiece;
  // Measured raw crack-in-two throughput per kernel (Mrows/s), indexed by
  // the CrackKernel enumerator; 0.0 = not measured (e.g. kSimd without a
  // usable vector ISA, or calibration disabled).
  double mrows_w4[kNumCrackKernels] = {};
  double mrows_w8[kNumCrackKernels] = {};
};

/// Runs the calibration sweep on first call and returns the cached result
/// afterwards; thread-safe and idempotent. When calibration is disabled the
/// returned record carries the fallback defaults with calibrated == false.
const KernelCalibration& Calibrate();

/// The cached calibration, or nullptr if no kAuto resolution or explicit
/// Calibrate() has happened yet. Never triggers the sweep — for reporting.
const KernelCalibration* CalibrationIfRan();

/// Whether the sweep is allowed to run: SetCalibrationEnabled() if called,
/// else the AIDX_CALIBRATE environment variable (unset or anything but
/// "0" = enabled).
bool CalibrationEnabled();

/// Programmatic override of AIDX_CALIBRATE, primarily for tests. Discards
/// any cached calibration so the next Calibrate()/kAuto resolution reflects
/// the new setting. Not intended for concurrent use with live queries (the
/// previous record stays valid for readers that already hold it).
void SetCalibrationEnabled(bool enabled);

}  // namespace aidx
