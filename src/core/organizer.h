// SegmentOrganizer: one physical-organization policy applied to one data
// segment — the building block of the hybrid adaptive indexing space
// (PVLDB 2011). A segment is organized by exactly one of:
//
//   kCrack : lazy — cracked incrementally by the queries that touch it;
//   kSort  : eager — fully sorted on first touch, then binary searched;
//   kRadix : middle ground — radix-clustered on first touch (one counting
//            pass), then cracked within clusters.
//
// Hybrid algorithm XY (X, Y in {C, S, R}) applies policy X to the initial
// partitions and policy Y to the final-store segments.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "core/cracker_column.h"
#include "core/cut.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Physical organization policy for a segment.
enum class OrganizeMode : char {
  kCrack = 'C',
  kSort = 'S',
  kRadix = 'R',
};

inline char OrganizeModeLetter(OrganizeMode mode) { return static_cast<char>(mode); }

template <ColumnValue T>
class SegmentOrganizer {
 public:
  struct Options {
    OrganizeMode mode = OrganizeMode::kCrack;
    int radix_bits = 6;
    bool with_row_ids = true;
    /// Crack kernel for the lazily organized policies (kCrack / kRadix's
    /// intra-cluster cracks); kSort never cracks.
    CrackKernel kernel = CrackKernel::kAuto;
    /// Branchy-fallback piece threshold; 0 = calibrated process default.
    std::size_t predication_min_piece = 0;
  };

  /// Adopts the segment's arrays. `row_ids` may be empty when
  /// options.with_row_ids is false.
  SegmentOrganizer(std::vector<T> values, std::vector<row_id_t> row_ids,
                   Options options)
      : options_(options),
        crack_(std::move(values), std::move(row_ids),
               CrackerColumnOptions{
                   .with_row_ids = options.with_row_ids,
                   .kernel = options.kernel,
                   .predication_min_piece = options.predication_min_piece}) {}

  AIDX_DEFAULT_MOVE_ONLY(SegmentOrganizer);

  /// Applies the eager part of the policy (sort / radix-cluster). Idempotent;
  /// kCrack is fully lazy so this is a no-op for it. Returns the number of
  /// values touched (the organization work performed).
  std::size_t EnsureOrganized() {
    if (organized_) return 0;
    (void)failpoints::organizer_step.Inject();  // delay-only merge-step point
    organized_ = true;
    switch (options_.mode) {
      case OrganizeMode::kCrack:
        return 0;
      case OrganizeMode::kSort:
        SortAll();
        return size();
      case OrganizeMode::kRadix:
        crack_.SeedRadixClusters(options_.radix_bits);
        return size();
    }
    return 0;
  }

  /// Contiguous positions of values matching `pred`, organizing as needed.
  PositionRange Resolve(const RangePredicate<T>& pred) {
    EnsureOrganized();
    if (options_.mode == OrganizeMode::kSort) {
      return ResolveSorted(pred);
    }
    const CrackSelect sel = crack_.Select(pred);
    AIDX_DCHECK(sel.num_edges == 0);  // min_piece_size == 0 => pure ranges
    return sel.core;
  }

  std::span<const T> values() const { return crack_.values(); }
  std::span<const row_id_t> row_ids() const { return crack_.row_ids(); }
  std::size_t size() const { return crack_.size(); }
  OrganizeMode mode() const { return options_.mode; }
  bool organized() const { return organized_; }

  /// Work counters from the underlying cracked representation.
  const CrackerStats& crack_stats() const { return crack_.stats(); }

  /// Frees payload memory once the segment's data has fully migrated.
  void Release() { crack_.Release(); }

  /// Appends fresh tuples to the segment. A sorted organized segment
  /// absorbs them by sorted insertion (organization preserved — no
  /// re-sort on the next query); otherwise any prior organization is
  /// discarded (cuts cleared, organized flag reset) and the next query
  /// re-organizes under the segment's policy, the lazy bargain the rest
  /// of the system already makes. `rids` must align with `values` when
  /// row ids are enabled and may be empty otherwise.
  void Append(std::span<const T> values, std::span<const row_id_t> rids) {
    AIDX_CHECK(!options_.with_row_ids || rids.size() == values.size());
    (void)failpoints::organizer_step.Inject();  // delay-only merge-step point
    auto& vals = MutableValues();
    if (options_.mode == OrganizeMode::kSort && organized_) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        const auto at = std::upper_bound(vals.begin(), vals.end(), values[i]);
        const auto pos = at - vals.begin();
        vals.insert(at, values[i]);
        if (options_.with_row_ids) {
          auto& stored = MutableRowIds();
          stored.insert(stored.begin() + pos, rids[i]);
        }
      }
      crack_.mutable_index().set_column_size(vals.size());
      return;
    }
    vals.insert(vals.end(), values.begin(), values.end());
    if (options_.with_row_ids) {
      auto& stored = MutableRowIds();
      stored.insert(stored.end(), rids.begin(), rids.end());
    }
    ResetOrganization();
  }

  /// Removes one occurrence of `v`; false when absent. A sorted organized
  /// segment erases in place (order preserved); otherwise the victim is
  /// swap-removed and the organization reset.
  bool EraseOne(T v) {
    auto& vals = MutableValues();
    if (options_.mode == OrganizeMode::kSort && organized_) {
      const auto it = std::lower_bound(vals.begin(), vals.end(), v);
      if (it == vals.end() || *it != v) return false;
      if (options_.with_row_ids) {
        auto& rids = MutableRowIds();
        rids.erase(rids.begin() + (it - vals.begin()));
      }
      vals.erase(it);
      crack_.mutable_index().set_column_size(vals.size());
      return true;
    }
    const auto it = std::find(vals.begin(), vals.end(), v);
    if (it == vals.end()) return false;
    const std::size_t at = static_cast<std::size_t>(it - vals.begin());
    vals[at] = vals.back();
    vals.pop_back();
    if (options_.with_row_ids) {
      auto& rids = MutableRowIds();
      rids[at] = rids.back();
      rids.pop_back();
    }
    ResetOrganization();
    return true;
  }

  bool Validate() const {
    if (options_.mode == OrganizeMode::kSort && organized_) {
      return std::is_sorted(values().begin(), values().end());
    }
    return crack_.ValidatePieces();
  }

 private:
  void SortAll() {
    // Sort through the cracker column's storage; with row ids this is an
    // argsort so the pairs stay aligned.
    auto& vals = MutableValues();
    if (!options_.with_row_ids) {
      std::sort(vals.begin(), vals.end());
      return;
    }
    auto& rids = MutableRowIds();
    const std::size_t n = vals.size();
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    std::vector<T> sorted_vals(n);
    std::vector<row_id_t> sorted_rids(n);
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vals[i] = vals[perm[i]];
      sorted_rids[i] = rids[perm[i]];
    }
    vals = std::move(sorted_vals);
    rids = std::move(sorted_rids);
  }

  PositionRange ResolveSorted(const RangePredicate<T>& pred) const {
    const auto vals = values();
    std::size_t lo = 0;
    std::size_t hi = vals.size();
    switch (pred.low_kind) {
      case BoundKind::kInclusive:
        lo = static_cast<std::size_t>(
            std::lower_bound(vals.begin(), vals.end(), pred.low) - vals.begin());
        break;
      case BoundKind::kExclusive:
        lo = static_cast<std::size_t>(
            std::upper_bound(vals.begin(), vals.end(), pred.low) - vals.begin());
        break;
      case BoundKind::kUnbounded:
        break;
    }
    switch (pred.high_kind) {
      case BoundKind::kInclusive:
        hi = static_cast<std::size_t>(
            std::upper_bound(vals.begin(), vals.end(), pred.high) - vals.begin());
        break;
      case BoundKind::kExclusive:
        hi = static_cast<std::size_t>(
            std::lower_bound(vals.begin(), vals.end(), pred.high) - vals.begin());
        break;
      case BoundKind::kUnbounded:
        break;
    }
    if (hi < lo) hi = lo;
    return {lo, hi};
  }

  // SortAll rearranges the cracker column's raw storage; SegmentOrganizer
  // is a friend of CrackerColumn for exactly this.
  std::vector<T>& MutableValues() { return crack_.mutable_values(); }
  std::vector<row_id_t>& MutableRowIds() { return crack_.mutable_row_ids(); }

  /// Drops accumulated cuts and the organized flag after a raw-array edit.
  void ResetOrganization() {
    crack_.mutable_index().Clear();
    crack_.mutable_index().set_column_size(crack_.size());
    organized_ = false;
  }

  Options options_;
  CrackerColumn<T> crack_;
  bool organized_ = false;
};

}  // namespace aidx
