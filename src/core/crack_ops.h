// The physical reorganization primitives of database cracking (CIDR 2007):
// crack-in-two and crack-in-three. These run inside the select operator —
// the defining move of adaptive indexing: the query operator itself
// reorganizes data.
//
// Both primitives optionally maintain a parallel payload array in tandem.
// The payload is a row id for cracker columns and a *tail value* for the
// cracker maps of sideways cracking (where the projected attribute travels
// with the selection attribute -- the self-organizing tuple reconstruction
// idea of SIGMOD 2009).
//
// ## Kernels
//
// Every strategy in this repo bottoms out in these partitioning loops, so
// their inner-loop shape *is* the system's hot path. Three interchangeable
// kernels implement the same multiset-partition contract (identical split
// points; element order within a side is unspecified, as everywhere in a
// cracked column):
//
//   kBranchy            The classic Hoare two-pointer sweep. Minimal
//                       instruction count, but every comparison is a
//                       data-dependent branch — on random data the branch
//                       predictor is wrong ~50% of the time, and the
//                       mispredict penalty dominates (Pirk et al., DaMoN
//                       2014, "Database cracking: fancy scan, not poor
//                       man's sort!").
//
//   kPredicated         Branch-free "hole passing": one value rides in a
//                       register, each step writes it to the side chosen by
//                       the comparison *result* (cursor arithmetic /
//                       cmov-style selects, no control dependency) and
//                       refills the register from the slot it opened.
//                       Exactly one store and two loads per element,
//                       tandem-payload capable, zero mispredicts.
//
//   kPredicatedUnrolled The same idea restructured around fixed-size
//                       blocks (BlockQuicksort-style): a tight, manually
//                       unrolled compare loop classifies a 64-element block
//                       into a flag buffer (the loop autovectorizes — no
//                       stores depend on the comparisons), a branch-free
//                       compaction turns flags into misplaced-element
//                       offsets, and misplaced pairs are swapped wholesale.
//                       Best throughput on large pieces; highest fixed cost.
//
// Dispatch is piece-size aware: below kPredicationMinPiece values the
// branchy sweep wins (predication's fixed per-element cost and the blocked
// kernel's setup lose to a handful of cheap, mostly-predictable branches),
// so the non-branchy kernels silently fall back on tiny pieces. bench_e12
// measures the crossover.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>

#include "core/cut.h"
#include "storage/types.h"
#include "util/logging.h"

namespace aidx {

/// Inner-loop implementation used by the crack primitives. One knob flips
/// it for every strategy (StrategyConfig::crack_kernel).
enum class CrackKernel : char {
  kBranchy,             // Hoare sweep, data-dependent branches (the classic)
  kPredicated,          // branch-free hole passing, cmov-style selects
  kPredicatedUnrolled,  // blocked + unrolled, autovectorizable compare loop
};

inline const char* CrackKernelName(CrackKernel kernel) {
  switch (kernel) {
    case CrackKernel::kBranchy:
      return "branchy";
    case CrackKernel::kPredicated:
      return "predicated";
    case CrackKernel::kPredicatedUnrolled:
      return "unrolled";
  }
  return "?";
}

/// Display suffix for strategy names ("" / "+pred" / "+vec"); comma-free so
/// names land unquoted in CSV headers.
inline const char* CrackKernelSuffix(CrackKernel kernel) {
  switch (kernel) {
    case CrackKernel::kBranchy:
      return "";
    case CrackKernel::kPredicated:
      return "+pred";
    case CrackKernel::kPredicatedUnrolled:
      return "+vec";
  }
  return "?";
}

/// Pieces smaller than this are always cracked with the branchy kernel:
/// below ~a hundred values the mispredict tax is small and predication's
/// extra loads/stores (and the blocked kernel's setup) cost more than they
/// save. Value chosen from the bench_e12 piece-size sweep.
inline constexpr std::size_t kPredicationMinPiece = 128;

/// Result of a three-way crack: [0, lower_end) | [lower_end, middle_end) |
/// [middle_end, n).
struct ThreeWaySplit {
  std::size_t lower_end = 0;
  std::size_t middle_end = 0;
};

namespace internal {

/// Loop-invariant "belongs strictly below the cut" predicate with the cut
/// kind hoisted to a template parameter, so the kernels' inner loops see a
/// single bare comparison instead of a branch on the kind.
template <ColumnValue T, CutKind kKind>
struct BelowPivot {
  T pivot;
  bool operator()(T v) const {
    if constexpr (kKind == CutKind::kLess) {
      return v < pivot;
    } else {
      return v <= pivot;
    }
  }
};

/// Unsigned integer with the same width as T, for mask-based selects.
template <std::size_t kBytes>
struct SizedUint;
template <>
struct SizedUint<1> { using type = std::uint8_t; };
template <>
struct SizedUint<2> { using type = std::uint16_t; };
template <>
struct SizedUint<4> { using type = std::uint32_t; };
template <>
struct SizedUint<8> { using type = std::uint64_t; };

/// cond ? if_true : if_false computed with mask arithmetic — compilers
/// happily turn a ternary whose arms differ in memory behaviour back into
/// a branch (defeating the whole point of predication), so the select is
/// spelled in a form that has no branch to recover. Types wider than any
/// machine integer (composite payloads, e.g. the tail+rid entries of
/// rid-carrying cracker maps) fall back to a plain ternary: only the
/// payload lane pays it, the value lane stays mask-selected.
template <typename T>
T BranchlessSelect(bool cond, T if_true, T if_false) {
  if constexpr (requires { typename SizedUint<sizeof(T)>::type; }) {
    using U = typename SizedUint<sizeof(T)>::type;
    const U mask = static_cast<U>(0) - static_cast<U>(cond);
    return std::bit_cast<T>(static_cast<U>(
        (std::bit_cast<U>(if_true) & mask) | (std::bit_cast<U>(if_false) & ~mask)));
  } else {
    return cond ? if_true : if_false;
  }
}

/// The classic branchy Hoare sweep: O(n) with at most n/2 swaps.
template <bool kTandem, ColumnValue T, typename Payload, typename BelowFn>
std::size_t CrackInTwoBranchyImpl(T* values, Payload* payloads, std::size_t n,
                                  BelowFn below) {
  std::size_t l = 0;
  std::size_t r = n;
  for (;;) {
    while (l < r && below(values[l])) ++l;
    while (l < r && !below(values[r - 1])) --r;
    if (l >= r) break;
    // values[l] is not-below and values[r-1] is below; l < r - 1 here.
    std::swap(values[l], values[r - 1]);
    if constexpr (kTandem) std::swap(payloads[l], payloads[r - 1]);
    ++l;
    --r;
  }
  return l;
}

/// Branch-free hole passing. Invariant at the loop head: [0, l) is below,
/// [r, n) is not-below, values[l] is a hole (its content is junk), and the
/// register value v is the one outstanding element awaiting placement; the
/// active window holds r - l elements (v plus values[l+1, r)). Each step
/// places v on the side its comparison selects and refills the register
/// from the end that shrank.
///
/// Two deliberate shapes keep this fast:
///  * selects are spelled as mask arithmetic (BranchlessSelect), because a
///    plain ternary whose arms differ in memory behaviour gets if-converted
///    back into a branch — re-creating the mispredicts predication exists
///    to remove;
///  * both refill candidates (values[l+1] / values[r-1]) are loaded at
///    addresses known from the *previous* iteration, so the loads issue
///    ahead of the comparison and stay off the loop's serial dependency
///    chain; only the one-cycle select consumes the comparison result.
template <bool kTandem, ColumnValue T, typename Payload, typename BelowFn>
std::size_t CrackInTwoPredicatedImpl(T* values, Payload* payloads, std::size_t n,
                                     BelowFn below) {
  if (n == 0) return 0;
  std::size_t l = 0;
  std::size_t r = n;
  T v = values[0];
  Payload pv{};
  if constexpr (kTandem) pv = payloads[0];
  while (r - l > 1) {
    // Refill candidates for both outcomes; r - l > 1 keeps both in the
    // window (they coincide when exactly two elements remain). On the
    // below side the candidate slot becomes the new hole; on the other
    // side it is the slot v is about to overwrite, read before the store.
    const T cand_left = values[l + 1];
    const T cand_right = values[r - 1];
    const std::size_t is_below = static_cast<std::size_t>(below(v));
    // dst = is_below ? l : r - 1, as pure mask arithmetic (is_below - 1 is
    // 0 or all-ones).
    const std::size_t dst = l + ((r - 1 - l) & (is_below - 1));
    values[dst] = v;
    v = BranchlessSelect(is_below != 0, cand_left, cand_right);
    if constexpr (kTandem) {
      const Payload pcand_left = payloads[l + 1];
      const Payload pcand_right = payloads[r - 1];
      payloads[dst] = pv;
      pv = BranchlessSelect(is_below != 0, pcand_left, pcand_right);
    }
    l += is_below;
    r -= is_below ^ 1;
  }
  values[l] = v;
  if constexpr (kTandem) payloads[l] = pv;
  return l + (below(v) ? 1 : 0);
}

/// Values per block of the unrolled kernel; offsets must fit in uint8_t.
inline constexpr std::size_t kCrackBlock = 64;

/// Classifies `block[0, kCrackBlock)` through `below`, recording the
/// offsets where `misplaced` holds (below == !kWantBelow). The compare
/// loop writes flags only — no store depends on a comparison — so it
/// autovectorizes; the compaction is branch-free and manually unrolled.
/// Returns the number of offsets recorded.
template <bool kWantBelow, ColumnValue T, typename BelowFn>
std::size_t ClassifyBlock(const T* block, BelowFn below, std::uint8_t* offsets) {
  std::uint8_t misplaced[kCrackBlock];
  for (std::size_t i = 0; i < kCrackBlock; i += 8) {
    misplaced[i] = below(block[i]) != kWantBelow;
    misplaced[i + 1] = below(block[i + 1]) != kWantBelow;
    misplaced[i + 2] = below(block[i + 2]) != kWantBelow;
    misplaced[i + 3] = below(block[i + 3]) != kWantBelow;
    misplaced[i + 4] = below(block[i + 4]) != kWantBelow;
    misplaced[i + 5] = below(block[i + 5]) != kWantBelow;
    misplaced[i + 6] = below(block[i + 6]) != kWantBelow;
    misplaced[i + 7] = below(block[i + 7]) != kWantBelow;
  }
  std::size_t num = 0;
  for (std::size_t i = 0; i < kCrackBlock; i += 4) {
    offsets[num] = static_cast<std::uint8_t>(i);
    num += misplaced[i];
    offsets[num] = static_cast<std::uint8_t>(i + 1);
    num += misplaced[i + 1];
    offsets[num] = static_cast<std::uint8_t>(i + 2);
    num += misplaced[i + 2];
    offsets[num] = static_cast<std::uint8_t>(i + 3);
    num += misplaced[i + 3];
  }
  return num;
}

/// Blocked branch-free partition (the BlockQuicksort scheme): classify one
/// 64-value block per side, swap the misplaced pairs wholesale, retire
/// whichever block came out clean. The remainder (< 2 blocks, plus at most
/// one partially consumed block whose classification we discard — cheaper
/// to rescan than to splice) finishes with the scalar predicated kernel.
template <bool kTandem, ColumnValue T, typename Payload, typename BelowFn>
std::size_t CrackInTwoUnrolledImpl(T* values, Payload* payloads, std::size_t n,
                                   BelowFn below) {
  constexpr std::size_t kBlock = kCrackBlock;
  std::size_t l = 0;
  std::size_t r = n;
  std::uint8_t offsets_l[kBlock];
  std::uint8_t offsets_r[kBlock];
  std::size_t num_l = 0, num_r = 0;    // offsets still unconsumed per side
  std::size_t start_l = 0, start_r = 0;  // first unconsumed offset per side
  while (r - l >= 2 * kBlock) {
    if (num_l == 0) {
      start_l = 0;
      num_l = ClassifyBlock</*kWantBelow=*/true>(values + l, below, offsets_l);
    }
    if (num_r == 0) {
      start_r = 0;
      // The right block is values[r - kBlock, r); record offsets from its
      // high end so `r - 1 - offset` addresses the element.
      std::uint8_t raw[kBlock];
      const std::size_t count =
          ClassifyBlock</*kWantBelow=*/false>(values + (r - kBlock), below, raw);
      for (std::size_t j = 0; j < count; ++j) {
        offsets_r[j] = static_cast<std::uint8_t>(kBlock - 1 - raw[count - 1 - j]);
      }
      num_r = count;
    }
    const std::size_t num = std::min(num_l, num_r);
    for (std::size_t j = 0; j < num; ++j) {
      const std::size_t a = l + offsets_l[start_l + j];
      const std::size_t b = r - 1 - offsets_r[start_r + j];
      std::swap(values[a], values[b]);
      if constexpr (kTandem) std::swap(payloads[a], payloads[b]);
    }
    num_l -= num;
    num_r -= num;
    start_l += num;
    start_r += num;
    if (num_l == 0) l += kBlock;
    if (num_r == 0) r -= kBlock;
  }
  // Scalar tail over [l, r): correct regardless of any discarded partial
  // classification, since the window's content is a valid sub-multiset.
  Payload* tail_payloads = nullptr;
  if constexpr (kTandem) tail_payloads = payloads + l;
  return l + CrackInTwoPredicatedImpl<kTandem>(values + l, tail_payloads, r - l,
                                               below);
}

/// Picks the implementation for one (kernel, tandem) combination. The cut
/// kind is already baked into `below`.
template <ColumnValue T, typename Payload, typename BelowFn>
std::size_t CrackInTwoWithBelow(std::span<T> values, std::span<Payload> payloads,
                                BelowFn below, CrackKernel kernel) {
  T* v = values.data();
  const std::size_t n = values.size();
  if (kernel == CrackKernel::kBranchy || n < kPredicationMinPiece) {
    return payloads.empty()
               ? CrackInTwoBranchyImpl<false>(v, static_cast<Payload*>(nullptr), n,
                                              below)
               : CrackInTwoBranchyImpl<true>(v, payloads.data(), n, below);
  }
  if (kernel == CrackKernel::kPredicated) {
    return payloads.empty()
               ? CrackInTwoPredicatedImpl<false>(v, static_cast<Payload*>(nullptr),
                                                 n, below)
               : CrackInTwoPredicatedImpl<true>(v, payloads.data(), n, below);
  }
  return payloads.empty()
             ? CrackInTwoUnrolledImpl<false>(v, static_cast<Payload*>(nullptr), n,
                                             below)
             : CrackInTwoUnrolledImpl<true>(v, payloads.data(), n, below);
}

}  // namespace internal

/// Partitions `values` (and `row_ids` in tandem when non-empty) around `cut`
/// using `kernel` (see the kernel table in the file comment; piece-size
/// dispatch falls back to branchy below kPredicationMinPiece).
///
/// Returns the split point m such that Below(cut) holds exactly for
/// [0, m) and fails for [m, n). O(n), no allocation. All kernels preserve
/// the multiset and produce the same m; the order *within* each side is
/// kernel-specific (callers never rely on it — pieces are unordered).
template <ColumnValue T, typename Payload = row_id_t>
std::size_t CrackInTwo(std::span<T> values, std::span<Payload> row_ids,
                       const Cut<T>& cut,
                       CrackKernel kernel = CrackKernel::kBranchy) {
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  if (cut.kind == CutKind::kLess) {
    return internal::CrackInTwoWithBelow(
        values, row_ids, internal::BelowPivot<T, CutKind::kLess>{cut.value},
        kernel);
  }
  return internal::CrackInTwoWithBelow(
      values, row_ids, internal::BelowPivot<T, CutKind::kLessEq>{cut.value},
      kernel);
}

/// Element visits a CrackInThree over n values performs: the branchy DNF
/// sweep visits each element once; the non-branchy two-pass decomposition
/// revisits the upper remainder (n - lower_end). Callers use this to keep
/// the values_touched statistic honest across kernels.
inline std::size_t CrackInThreeValuesTouched(std::size_t n, std::size_t lower_end,
                                             CrackKernel kernel) {
  if (kernel == CrackKernel::kBranchy || n < kPredicationMinPiece) return n;
  return n + (n - lower_end);
}

/// Partitions into three regions (kernel-selectable):
///   region A: Below(lo_cut)
///   region B: !Below(lo_cut) && Below(hi_cut)   — the qualifying middle
///   region C: !Below(hi_cut)
///
/// Requires lo_cut <= hi_cut (so A and C cannot overlap). The branchy
/// kernel is the classic one-pass Dutch-national-flag sweep; the predicated
/// kernels decompose into two branch-free crack-in-twos (first on lo_cut,
/// then on the upper remainder with hi_cut) — more element moves, but no
/// mispredicts; bench_e12 measures where each wins.
template <ColumnValue T, typename Payload = row_id_t>
ThreeWaySplit CrackInThree(std::span<T> values, std::span<Payload> row_ids,
                           const Cut<T>& lo_cut, const Cut<T>& hi_cut,
                           CrackKernel kernel = CrackKernel::kBranchy) {
  AIDX_DCHECK(!(hi_cut < lo_cut));
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  if (kernel != CrackKernel::kBranchy &&
      values.size() >= kPredicationMinPiece) {
    const std::size_t lower = CrackInTwo<T, Payload>(values, row_ids, lo_cut, kernel);
    const std::size_t middle =
        lower + CrackInTwo<T, Payload>(
                    values.subspan(lower),
                    row_ids.empty() ? row_ids : row_ids.subspan(lower), hi_cut,
                    kernel);
    return {lower, middle};
  }
  const bool tandem = !row_ids.empty();
  std::size_t a = 0;                // next slot of region A
  std::size_t m = 0;                // cursor
  std::size_t z = values.size();    // first slot of region C
  while (m < z) {
    const T v = values[m];
    if (lo_cut.Below(v)) {
      std::swap(values[a], values[m]);
      if (tandem) std::swap(row_ids[a], row_ids[m]);
      ++a;
      ++m;
    } else if (!hi_cut.Below(v)) {
      --z;
      std::swap(values[m], values[z]);
      if (tandem) std::swap(row_ids[m], row_ids[z]);
    } else {
      ++m;
    }
  }
  return {a, z};
}

}  // namespace aidx
