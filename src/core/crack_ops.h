// The physical reorganization primitives of database cracking (CIDR 2007):
// crack-in-two and crack-in-three. These run inside the select operator —
// the defining move of adaptive indexing: the query operator itself
// reorganizes data.
//
// Both primitives optionally maintain a parallel payload array in tandem.
// The payload is a row id for cracker columns and a *tail value* for the
// cracker maps of sideways cracking (where the projected attribute travels
// with the selection attribute -- the self-organizing tuple reconstruction
// idea of SIGMOD 2009).
#pragma once

#include <span>
#include <utility>

#include "core/cut.h"
#include "storage/types.h"
#include "util/logging.h"

namespace aidx {

/// Partitions `values` (and `row_ids` in tandem when non-empty) around `cut`.
///
/// Returns the split point m such that Below(cut) holds exactly for
/// [0, m) and fails for [m, n). Hoare-style two-pointer pass: O(n) with at
/// most n/2 swaps; no allocation.
template <ColumnValue T, typename Payload = row_id_t>
std::size_t CrackInTwo(std::span<T> values, std::span<Payload> row_ids,
                       const Cut<T>& cut) {
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  const bool tandem = !row_ids.empty();
  std::size_t l = 0;
  std::size_t r = values.size();
  for (;;) {
    while (l < r && cut.Below(values[l])) ++l;
    while (l < r && !cut.Below(values[r - 1])) --r;
    if (l >= r) break;
    // values[l] is not-below and values[r-1] is below; l < r - 1 here.
    std::swap(values[l], values[r - 1]);
    if (tandem) std::swap(row_ids[l], row_ids[r - 1]);
    ++l;
    --r;
  }
  return l;
}

/// Result of a three-way crack: [0, lower_end) | [lower_end, middle_end) |
/// [middle_end, n).
struct ThreeWaySplit {
  std::size_t lower_end = 0;
  std::size_t middle_end = 0;
};

/// Partitions into three regions in one pass (Dutch-national-flag sweep):
///   region A: Below(lo_cut)
///   region B: !Below(lo_cut) && Below(hi_cut)   — the qualifying middle
///   region C: !Below(hi_cut)
///
/// Requires lo_cut <= hi_cut (so A and C cannot overlap).
template <ColumnValue T, typename Payload = row_id_t>
ThreeWaySplit CrackInThree(std::span<T> values, std::span<Payload> row_ids,
                           const Cut<T>& lo_cut, const Cut<T>& hi_cut) {
  AIDX_DCHECK(!(hi_cut < lo_cut));
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  const bool tandem = !row_ids.empty();
  std::size_t a = 0;                // next slot of region A
  std::size_t m = 0;                // cursor
  std::size_t z = values.size();    // first slot of region C
  while (m < z) {
    const T v = values[m];
    if (lo_cut.Below(v)) {
      std::swap(values[a], values[m]);
      if (tandem) std::swap(row_ids[a], row_ids[m]);
      ++a;
      ++m;
    } else if (!hi_cut.Below(v)) {
      --z;
      std::swap(values[m], values[z]);
      if (tandem) std::swap(row_ids[m], row_ids[z]);
    } else {
      ++m;
    }
  }
  return {a, z};
}

}  // namespace aidx
