// The physical reorganization primitives of database cracking (CIDR 2007):
// crack-in-two and crack-in-three. These run inside the select operator —
// the defining move of adaptive indexing: the query operator itself
// reorganizes data.
//
// Both primitives optionally maintain a parallel payload array in tandem.
// The payload is a row id for cracker columns and a *tail value* for the
// cracker maps of sideways cracking (where the projected attribute travels
// with the selection attribute -- the self-organizing tuple reconstruction
// idea of SIGMOD 2009).
//
// ## Kernels
//
// Every strategy in this repo bottoms out in these partitioning loops, so
// their inner-loop shape *is* the system's hot path. Four interchangeable
// kernels implement the same multiset-partition contract (identical split
// points; element order within a side is unspecified, as everywhere in a
// cracked column):
//
//   kBranchy            The classic Hoare two-pointer sweep. Minimal
//                       instruction count, but every comparison is a
//                       data-dependent branch — on random data the branch
//                       predictor is wrong ~50% of the time, and the
//                       mispredict penalty dominates (Pirk et al., DaMoN
//                       2014, "Database cracking: fancy scan, not poor
//                       man's sort!").
//
//   kPredicated         Branch-free "hole passing": one value rides in a
//                       register, each step writes it to the side chosen by
//                       the comparison *result* (cursor arithmetic /
//                       cmov-style selects, no control dependency) and
//                       refills the register from the slot it opened.
//                       Exactly one store and two loads per element,
//                       tandem-payload capable, zero mispredicts.
//
//   kPredicatedUnrolled The same idea restructured around fixed-size
//                       blocks (BlockQuicksort-style): a tight, manually
//                       unrolled compare loop classifies a 64-element block
//                       into a flag buffer (the loop autovectorizes — no
//                       stores depend on the comparisons), a branch-free
//                       compaction turns flags into misplaced-element
//                       offsets, and misplaced pairs are swapped wholesale.
//
//   kSimd               Explicit intrinsics, two shapes. Value-only cracks
//                       (AVX2) partition each vector *in registers*:
//                       compare + movemask yields a lane mask, a 256-entry
//                       permutation LUT compacts below-lanes to the front,
//                       and the permuted vector is stored at both write
//                       frontiers (the vqsort/BlockQuicksort compaction-
//                       store partition, ~1 store amortized per element).
//                       Tandem cracks keep the blocked classify/swap
//                       scheme, with AVX2 movemask (or NEON bit-weighted
//                       compares + horizontal adds) building a 64-bit
//                       "below" mask per block and a byte-LUT turning mask
//                       bytes into packed misplaced-element offsets.
//                       Compile-time ISA selection via feature macros;
//                       runtime cpuid check (SimdKernelAvailable) falls
//                       back to kPredicatedUnrolled on hosts without AVX2.
//
//   kAuto               Not a kernel: resolves to the host-calibrated
//                       kernel for the element width at the dispatch point
//                       (src/core/kernel_autotune.h). This is the
//                       repo-wide default; with calibration disabled
//                       (AIDX_CALIBRATE=0) it resolves to
//                       kPredicatedUnrolled.
//
// Dispatch is piece-size aware: below a threshold the branchy sweep wins
// (predication's fixed per-element cost and the blocked kernel's setup lose
// to a handful of cheap, mostly-predictable branches), so the non-branchy
// kernels silently fall back on tiny pieces. The threshold defaults to the
// calibrated value (kPredicationMinPiece before/without calibration) and is
// overridable per call site via the min_piece parameter
// (StrategyConfig::predication_min_piece upstream). bench_e12 measures the
// crossover.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

#include "core/cut.h"
#include "storage/types.h"
#include "util/logging.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define AIDX_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__GNUC__) && defined(__aarch64__)
#define AIDX_SIMD_NEON 1
#include <arm_neon.h>
#endif

// The build does not pass -mavx2 (the library must run on baseline x86-64),
// so the AVX2 kernels are compiled per-function with the target attribute
// and guarded by a runtime cpuid check.
#if defined(AIDX_SIMD_AVX2) && !defined(__AVX2__)
#define AIDX_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define AIDX_TARGET_AVX2
#endif

namespace aidx {

/// Inner-loop implementation used by the crack primitives. One knob flips
/// it for every strategy (StrategyConfig::crack_kernel).
enum class CrackKernel : char {
  kBranchy,             // Hoare sweep, data-dependent branches (the classic)
  kPredicated,          // branch-free hole passing, cmov-style selects
  kPredicatedUnrolled,  // blocked + unrolled, autovectorizable compare loop
  kSimd,                // blocked + explicit AVX2/NEON classify, LUT compact
  kAuto,                // resolve via the startup calibration sweep
};

/// Number of concrete (measurable) kernels; kAuto resolves to one of these.
inline constexpr std::size_t kNumCrackKernels = 4;

inline const char* CrackKernelName(CrackKernel kernel) {
  switch (kernel) {
    case CrackKernel::kBranchy:
      return "branchy";
    case CrackKernel::kPredicated:
      return "predicated";
    case CrackKernel::kPredicatedUnrolled:
      return "unrolled";
    case CrackKernel::kSimd:
      return "simd";
    case CrackKernel::kAuto:
      return "auto";
  }
  return "?";
}

/// Display suffix for strategy names; comma-free so names land unquoted in
/// CSV headers. kAuto — the default — keeps the bare historical names
/// ("crack", "pcrack(8x4)", ...); every explicitly pinned kernel gets a
/// distinguishing suffix, including the branchy differential oracle, so no
/// two configs that differ in kernel ever alias in a figure.
inline const char* CrackKernelSuffix(CrackKernel kernel) {
  switch (kernel) {
    case CrackKernel::kBranchy:
      return "+branchy";
    case CrackKernel::kPredicated:
      return "+pred";
    case CrackKernel::kPredicatedUnrolled:
      return "+vec";
    case CrackKernel::kSimd:
      return "+simd";
    case CrackKernel::kAuto:
      return "";
  }
  return "?";
}

/// Compiled-in fallback for the piece-size dispatch threshold: pieces
/// smaller than this are cracked with the branchy kernel when no calibrated
/// value is available (calibration disabled or not yet run) and the caller
/// did not pin one. Value chosen from the bench_e12 piece-size sweep on the
/// dev box; kernel_autotune re-derives it per host.
inline constexpr std::size_t kPredicationMinPiece = 128;

/// Resolves kAuto to the host-calibrated kernel for `value_width`-byte
/// elements (identity for concrete kernels). Defined in kernel_autotune.cc;
/// the first kAuto resolution triggers the calibration sweep (cached
/// process-wide).
CrackKernel ResolveCrackKernel(CrackKernel kernel, std::size_t value_width);

/// The piece-size threshold below which non-branchy kernels fall back to
/// branchy, for `value_width`-byte elements: the calibrated value once the
/// sweep has run, kPredicationMinPiece otherwise. Never triggers
/// calibration itself (explicit-kernel callers shouldn't pay for a sweep).
/// Defined in kernel_autotune.cc.
std::size_t DefaultCrackMinPiece(std::size_t value_width);

/// Result of a three-way crack: [0, lower_end) | [lower_end, middle_end) |
/// [middle_end, n).
struct ThreeWaySplit {
  std::size_t lower_end = 0;
  std::size_t middle_end = 0;
};

namespace internal {

/// Loop-invariant "belongs strictly below the cut" predicate with the cut
/// kind hoisted to a template parameter, so the kernels' inner loops see a
/// single bare comparison instead of a branch on the kind.
template <ColumnValue T, CutKind kKind>
struct BelowPivot {
  T pivot;
  bool operator()(T v) const {
    if constexpr (kKind == CutKind::kLess) {
      return v < pivot;
    } else {
      return v <= pivot;
    }
  }
};

/// Unsigned integer with the same width as T, for mask-based selects.
template <std::size_t kBytes>
struct SizedUint;
template <>
struct SizedUint<1> { using type = std::uint8_t; };
template <>
struct SizedUint<2> { using type = std::uint16_t; };
template <>
struct SizedUint<4> { using type = std::uint32_t; };
template <>
struct SizedUint<8> { using type = std::uint64_t; };

/// cond ? if_true : if_false computed with mask arithmetic — compilers
/// happily turn a ternary whose arms differ in memory behaviour back into
/// a branch (defeating the whole point of predication), so the select is
/// spelled in a form that has no branch to recover. Types wider than any
/// machine integer (composite payloads, e.g. the tail+rid entries of
/// rid-carrying cracker maps) fall back to a plain ternary: only the
/// payload lane pays it, the value lane stays mask-selected.
template <typename T>
T BranchlessSelect(bool cond, T if_true, T if_false) {
  if constexpr (requires { typename SizedUint<sizeof(T)>::type; }) {
    using U = typename SizedUint<sizeof(T)>::type;
    const U mask = static_cast<U>(0) - static_cast<U>(cond);
    return std::bit_cast<T>(static_cast<U>(
        (std::bit_cast<U>(if_true) & mask) | (std::bit_cast<U>(if_false) & ~mask)));
  } else {
    return cond ? if_true : if_false;
  }
}

/// The classic branchy Hoare sweep: O(n) with at most n/2 swaps.
template <bool kTandem, ColumnValue T, typename Payload, typename BelowFn>
std::size_t CrackInTwoBranchyImpl(T* values, Payload* payloads, std::size_t n,
                                  BelowFn below) {
  std::size_t l = 0;
  std::size_t r = n;
  for (;;) {
    while (l < r && below(values[l])) ++l;
    while (l < r && !below(values[r - 1])) --r;
    if (l >= r) break;
    // values[l] is not-below and values[r-1] is below; l < r - 1 here.
    std::swap(values[l], values[r - 1]);
    if constexpr (kTandem) std::swap(payloads[l], payloads[r - 1]);
    ++l;
    --r;
  }
  return l;
}

/// Branch-free hole passing. Invariant at the loop head: [0, l) is below,
/// [r, n) is not-below, values[l] is a hole (its content is junk), and the
/// register value v is the one outstanding element awaiting placement; the
/// active window holds r - l elements (v plus values[l+1, r)). Each step
/// places v on the side its comparison selects and refills the register
/// from the end that shrank.
///
/// Two deliberate shapes keep this fast:
///  * selects are spelled as mask arithmetic (BranchlessSelect), because a
///    plain ternary whose arms differ in memory behaviour gets if-converted
///    back into a branch — re-creating the mispredicts predication exists
///    to remove;
///  * both refill candidates (values[l+1] / values[r-1]) are loaded at
///    addresses known from the *previous* iteration, so the loads issue
///    ahead of the comparison and stay off the loop's serial dependency
///    chain; only the one-cycle select consumes the comparison result.
template <bool kTandem, ColumnValue T, typename Payload, typename BelowFn>
std::size_t CrackInTwoPredicatedImpl(T* values, Payload* payloads, std::size_t n,
                                     BelowFn below) {
  if (n == 0) return 0;
  std::size_t l = 0;
  std::size_t r = n;
  T v = values[0];
  Payload pv{};
  if constexpr (kTandem) pv = payloads[0];
  while (r - l > 1) {
    // Refill candidates for both outcomes; r - l > 1 keeps both in the
    // window (they coincide when exactly two elements remain). On the
    // below side the candidate slot becomes the new hole; on the other
    // side it is the slot v is about to overwrite, read before the store.
    const T cand_left = values[l + 1];
    const T cand_right = values[r - 1];
    const std::size_t is_below = static_cast<std::size_t>(below(v));
    // dst = is_below ? l : r - 1, as pure mask arithmetic (is_below - 1 is
    // 0 or all-ones).
    const std::size_t dst = l + ((r - 1 - l) & (is_below - 1));
    values[dst] = v;
    v = BranchlessSelect(is_below != 0, cand_left, cand_right);
    if constexpr (kTandem) {
      const Payload pcand_left = payloads[l + 1];
      const Payload pcand_right = payloads[r - 1];
      payloads[dst] = pv;
      pv = BranchlessSelect(is_below != 0, pcand_left, pcand_right);
    }
    l += is_below;
    r -= is_below ^ 1;
  }
  values[l] = v;
  if constexpr (kTandem) payloads[l] = pv;
  return l + (below(v) ? 1 : 0);
}

/// Values per block of the blocked kernels; offsets must fit in uint8_t and
/// the per-block "below" masks of the SIMD classifier in uint64_t.
inline constexpr std::size_t kCrackBlock = 64;

/// Classifies `block[0, kCrackBlock)` through `below`, recording the
/// offsets where `misplaced` holds (below == !kWantBelow). The compare
/// loop writes flags only — no store depends on a comparison — so it
/// autovectorizes; the compaction is branch-free and manually unrolled.
/// Returns the number of offsets recorded.
template <bool kWantBelow, ColumnValue T, typename BelowFn>
std::size_t ClassifyBlock(const T* block, BelowFn below, std::uint8_t* offsets) {
  std::uint8_t misplaced[kCrackBlock];
  for (std::size_t i = 0; i < kCrackBlock; i += 8) {
    misplaced[i] = below(block[i]) != kWantBelow;
    misplaced[i + 1] = below(block[i + 1]) != kWantBelow;
    misplaced[i + 2] = below(block[i + 2]) != kWantBelow;
    misplaced[i + 3] = below(block[i + 3]) != kWantBelow;
    misplaced[i + 4] = below(block[i + 4]) != kWantBelow;
    misplaced[i + 5] = below(block[i + 5]) != kWantBelow;
    misplaced[i + 6] = below(block[i + 6]) != kWantBelow;
    misplaced[i + 7] = below(block[i + 7]) != kWantBelow;
  }
  std::size_t num = 0;
  for (std::size_t i = 0; i < kCrackBlock; i += 4) {
    offsets[num] = static_cast<std::uint8_t>(i);
    num += misplaced[i];
    offsets[num] = static_cast<std::uint8_t>(i + 1);
    num += misplaced[i + 1];
    offsets[num] = static_cast<std::uint8_t>(i + 2);
    num += misplaced[i + 2];
    offsets[num] = static_cast<std::uint8_t>(i + 3);
    num += misplaced[i + 3];
  }
  return num;
}

// ---------------------------------------------------------------------------
// SIMD classify/compact (the kSimd kernel's inner step).
//
// BelowMask64 returns a 64-bit mask, bit i set iff below(block[i]) — built
// from vector compares + movemask on AVX2 and bit-weighted compares +
// horizontal adds on NEON. MaskToOffsets compacts a misplaced-mask into
// packed byte offsets via a 256-entry LUT: each mask byte yields up to 8
// offsets with one table load, one add, one 8-byte store and a popcount —
// no per-element work at all.
// ---------------------------------------------------------------------------

#if defined(AIDX_SIMD_AVX2)

AIDX_TARGET_AVX2 inline std::uint64_t BelowMask64(const std::int32_t* block,
                                                  std::int32_t pivot,
                                                  bool less_eq) {
  const __m256i p = _mm256_set1_epi32(pivot);
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < kCrackBlock / 8; ++v) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block) + v);
    // less: pivot > x. less-eq: NOT (x > pivot), inverted below.
    const __m256i cmp =
        less_eq ? _mm256_cmpgt_epi32(x, p) : _mm256_cmpgt_epi32(p, x);
    std::uint64_t bits =
        static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp))) &
        0xFFu;
    if (less_eq) bits ^= 0xFFu;
    mask |= bits << (8 * v);
  }
  return mask;
}

AIDX_TARGET_AVX2 inline std::uint64_t BelowMask64(const std::int64_t* block,
                                                  std::int64_t pivot,
                                                  bool less_eq) {
  const __m256i p = _mm256_set1_epi64x(pivot);
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < kCrackBlock / 4; ++v) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block) + v);
    const __m256i cmp =
        less_eq ? _mm256_cmpgt_epi64(x, p) : _mm256_cmpgt_epi64(p, x);
    std::uint64_t bits =
        static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(cmp))) &
        0xFu;
    if (less_eq) bits ^= 0xFu;
    mask |= bits << (4 * v);
  }
  return mask;
}

AIDX_TARGET_AVX2 inline std::uint64_t BelowMask64(const double* block,
                                                  double pivot, bool less_eq) {
  const __m256d p = _mm256_set1_pd(pivot);
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < kCrackBlock / 4; ++v) {
    const __m256d x = _mm256_loadu_pd(block + 4 * v);
    // Ordered-quiet compares match the scalar operators: NaN is never
    // "below", exactly like `v < pivot` / `v <= pivot`.
    const __m256d cmp = less_eq ? _mm256_cmp_pd(x, p, _CMP_LE_OQ)
                                : _mm256_cmp_pd(x, p, _CMP_LT_OQ);
    const std::uint64_t bits =
        static_cast<std::uint32_t>(_mm256_movemask_pd(cmp)) & 0xFu;
    mask |= bits << (4 * v);
  }
  return mask;
}

#elif defined(AIDX_SIMD_NEON)

inline std::uint64_t BelowMask64(const std::int32_t* block, std::int32_t pivot,
                                 bool less_eq) {
  static constexpr std::uint32_t kWeights[4] = {1u, 2u, 4u, 8u};
  const int32x4_t p = vdupq_n_s32(pivot);
  const uint32x4_t w = vld1q_u32(kWeights);
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < kCrackBlock / 4; ++v) {
    const int32x4_t x = vld1q_s32(block + 4 * v);
    const uint32x4_t cmp = less_eq ? vcleq_s32(x, p) : vcltq_s32(x, p);
    mask |= static_cast<std::uint64_t>(vaddvq_u32(vandq_u32(cmp, w)))
            << (4 * v);
  }
  return mask;
}

inline std::uint64_t BelowMask64(const std::int64_t* block, std::int64_t pivot,
                                 bool less_eq) {
  static constexpr std::uint64_t kWeights[2] = {1u, 2u};
  const int64x2_t p = vdupq_n_s64(pivot);
  const uint64x2_t w = vld1q_u64(kWeights);
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < kCrackBlock / 2; ++v) {
    const int64x2_t x = vld1q_s64(block + 2 * v);
    const uint64x2_t cmp = less_eq ? vcleq_s64(x, p) : vcltq_s64(x, p);
    mask |= vaddvq_u64(vandq_u64(cmp, w)) << (2 * v);
  }
  return mask;
}

inline std::uint64_t BelowMask64(const double* block, double pivot,
                                 bool less_eq) {
  static constexpr std::uint64_t kWeights[2] = {1u, 2u};
  const float64x2_t p = vdupq_n_f64(pivot);
  const uint64x2_t w = vld1q_u64(kWeights);
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < kCrackBlock / 2; ++v) {
    const float64x2_t x = vld1q_f64(block + 2 * v);
    const uint64x2_t cmp = less_eq ? vcleq_f64(x, p) : vcltq_f64(x, p);
    mask |= vaddvq_u64(vandq_u64(cmp, w)) << (2 * v);
  }
  return mask;
}

#else

/// Scalar stand-in so the kSimd plumbing compiles on ISAs without an
/// intrinsic path; SimdKernelAvailable() returns false there, so the
/// dispatcher never actually routes through it.
template <ColumnValue T>
std::uint64_t BelowMask64(const T* block, T pivot, bool less_eq) {
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < kCrackBlock; ++i) {
    const bool below = less_eq ? (block[i] <= pivot) : (block[i] < pivot);
    mask |= static_cast<std::uint64_t>(below) << i;
  }
  return mask;
}

#endif  // AIDX_SIMD_AVX2 / AIDX_SIMD_NEON

/// 256-entry LUT: entry b packs the positions of b's set bits into one byte
/// per position, low to high. MaskToOffsets shifts each packed group to its
/// chunk base with a single multiply-add.
inline constexpr std::array<std::uint64_t, 256> kPackedBitPositions = [] {
  std::array<std::uint64_t, 256> lut{};
  for (unsigned byte = 0; byte < 256; ++byte) {
    std::uint64_t packed = 0;
    unsigned count = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      if (byte & (1u << bit)) {
        packed |= static_cast<std::uint64_t>(bit) << (8 * count);
        ++count;
      }
    }
    lut[byte] = packed;
  }
  return lut;
}();

/// Compacts the set-bit positions of `mask` into `offsets`, ascending.
/// Returns the number of offsets written. Each 8-byte store may spill up to
/// 8 bytes of garbage past the last real offset, so the destination buffer
/// needs kCrackBlock + 8 bytes of capacity.
inline std::size_t MaskToOffsets(std::uint64_t mask, std::uint8_t* offsets) {
  std::size_t num = 0;
  for (unsigned chunk = 0; chunk < 8; ++chunk) {
    const auto byte = static_cast<std::uint8_t>(mask >> (8 * chunk));
    const std::uint64_t packed =
        kPackedBitPositions[byte] +
        0x0101010101010101ULL * static_cast<std::uint64_t>(8 * chunk);
    std::memcpy(offsets + num, &packed, sizeof packed);
    num += static_cast<std::size_t>(std::popcount(byte));
  }
  return num;
}

#if defined(AIDX_SIMD_AVX2)

// ---------------------------------------------------------------------------
// AVX2 compaction-store partition (the kSimd kernel's value-only fast path).
//
// Instead of classifying blocks and swapping misplaced pairs, each loaded
// vector is partitioned *in registers*: a compare+movemask yields the lane
// mask, a 256-entry permutation LUT compacts below-lanes to the front, and
// the permuted vector is stored at both write frontiers — the left store's
// first popcount lanes and the right store's remaining lanes are the valid
// halves, and every lane gets overwritten by a later store of its side. Two
// edge vectors are buffered in registers up front so the double-ended
// stores always land in vacated space (the BlockQuicksort/vqsort scheme).
// ---------------------------------------------------------------------------

/// Permutation tables for the compaction stores: entry m of the 8-lane table
/// is a permutevar8x32 index vector moving the lanes whose bit is set in m
/// to the front (ascending) and the rest to the back (ascending). The
/// 4-lane table is the same for 64-bit elements viewed as 32-bit lane pairs.
alignas(32) inline constexpr std::array<std::array<std::int32_t, 8>, 256>
    kCompactPerm8 = [] {
      std::array<std::array<std::int32_t, 8>, 256> lut{};
      for (unsigned mask = 0; mask < 256; ++mask) {
        unsigned slot = 0;
        for (unsigned lane = 0; lane < 8; ++lane) {
          if (mask & (1u << lane)) lut[mask][slot++] = static_cast<std::int32_t>(lane);
        }
        for (unsigned lane = 0; lane < 8; ++lane) {
          if (!(mask & (1u << lane))) lut[mask][slot++] = static_cast<std::int32_t>(lane);
        }
      }
      return lut;
    }();

alignas(32) inline constexpr std::array<std::array<std::int32_t, 8>, 16>
    kCompactPerm4 = [] {
      std::array<std::array<std::int32_t, 8>, 16> lut{};
      for (unsigned mask = 0; mask < 16; ++mask) {
        unsigned slot = 0;
        for (unsigned lane = 0; lane < 4; ++lane) {
          if (mask & (1u << lane)) {
            lut[mask][slot++] = static_cast<std::int32_t>(2 * lane);
            lut[mask][slot++] = static_cast<std::int32_t>(2 * lane + 1);
          }
        }
        for (unsigned lane = 0; lane < 4; ++lane) {
          if (!(mask & (1u << lane))) {
            lut[mask][slot++] = static_cast<std::int32_t>(2 * lane);
            lut[mask][slot++] = static_cast<std::int32_t>(2 * lane + 1);
          }
        }
      }
      return lut;
    }();

/// Per-vector lane mask: bit i set iff below(lane i). One compare + one
/// movemask; the less-eq flavour compares the other direction and inverts.
AIDX_TARGET_AVX2 inline unsigned LanesBelow(__m256i x, std::int32_t pivot,
                                            bool less_eq) {
  const __m256i p = _mm256_set1_epi32(pivot);
  if (less_eq) {
    const auto above = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(x, p))));
    return ~above & 0xFFu;
  }
  return static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(p, x))));
}

AIDX_TARGET_AVX2 inline unsigned LanesBelow(__m256i x, std::int64_t pivot,
                                            bool less_eq) {
  const __m256i p = _mm256_set1_epi64x(pivot);
  if (less_eq) {
    const auto above = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(x, p))));
    return ~above & 0xFu;
  }
  return static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p, x))));
}

AIDX_TARGET_AVX2 inline unsigned LanesBelow(__m256i x, double pivot,
                                            bool less_eq) {
  // Ordered-quiet compares match the scalar operators: NaN is never below.
  const __m256d xd = _mm256_castsi256_pd(x);
  const __m256d p = _mm256_set1_pd(pivot);
  const __m256d cmp = less_eq ? _mm256_cmp_pd(xd, p, _CMP_LE_OQ)
                              : _mm256_cmp_pd(xd, p, _CMP_LT_OQ);
  return static_cast<unsigned>(_mm256_movemask_pd(cmp)) & 0xFu;
}

/// Moves the lanes selected by `mask` to the vector's front, the rest to the
/// back, both in ascending lane order.
template <std::size_t kLanes>
AIDX_TARGET_AVX2 inline __m256i CompactLanes(__m256i x, unsigned mask) {
  const std::int32_t* entry =
      kLanes == 8 ? kCompactPerm8[mask].data() : kCompactPerm4[mask].data();
  const __m256i perm = _mm256_load_si256(reinterpret_cast<const __m256i*>(entry));
  return _mm256_permutevar8x32_epi32(x, perm);
}

/// Partitions one in-register vector into the double-ended write frontiers.
template <ColumnValue T>
AIDX_TARGET_AVX2 inline void PartitionStoreVec(T* values, __m256i x, T pivot,
                                               bool less_eq, std::size_t* wl,
                                               std::size_t* wr) {
  constexpr std::size_t kLanes = 32 / sizeof(T);
  const unsigned mask = LanesBelow(x, pivot, less_eq);
  const __m256i y = CompactLanes<kLanes>(x, mask);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + *wl), y);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + (*wr - kLanes)), y);
  const auto below = static_cast<std::size_t>(std::popcount(mask));
  *wl += below;
  *wr -= kLanes - below;
}

/// In-place vectorized partition of `values[0, n)`; n must be a multiple of
/// the lane count and at least four vectors. Always reads from whichever end
/// has less vacated space, which keeps every store inside vacated space
/// (free space is invariantly four vectors: the buffered edge vectors).
/// Reading *two* vectors per side decision matters: the decision is a
/// data-dependent branch (it follows the running below-counts), and at one
/// vector per decision its mispredicts dominate the narrow 4-lane kernels.
template <ColumnValue T>
AIDX_TARGET_AVX2 std::size_t SimdPartitionMain(T* values, std::size_t n, T pivot,
                                               bool less_eq) {
  constexpr std::size_t kLanes = 32 / sizeof(T);
  const __m256i first0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
  const __m256i first1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + kLanes));
  const __m256i last0 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(values + n - 2 * kLanes));
  const __m256i last1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + n - kLanes));
  std::size_t wl = 0;
  std::size_t wr = n;
  std::size_t rl = 2 * kLanes;
  std::size_t rr = n - 2 * kLanes;
  if (((rr - rl) / kLanes) % 2 != 0) {
    // Odd vector count in the window: retire one up front so the main loop
    // can consume exact pairs.
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + rl));
    rl += kLanes;
    PartitionStoreVec(values, x, pivot, less_eq, &wl, &wr);
  }
  while (rl < rr) {
    const T* src;
    if (rl - wl <= wr - rr) {
      src = values + rl;
      rl += 2 * kLanes;
    } else {
      rr -= 2 * kLanes;
      src = values + rr;
    }
    const __m256i x0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    const __m256i x1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + kLanes));
    PartitionStoreVec(values, x0, pivot, less_eq, &wl, &wr);
    PartitionStoreVec(values, x1, pivot, less_eq, &wl, &wr);
  }
  PartitionStoreVec(values, first0, pivot, less_eq, &wl, &wr);
  PartitionStoreVec(values, first1, pivot, less_eq, &wl, &wr);
  PartitionStoreVec(values, last0, pivot, less_eq, &wl, &wr);
  PartitionStoreVec(values, last1, pivot, less_eq, &wl, &wr);
  AIDX_DCHECK(wl == wr);
  return wl;
}

/// Block size of the SIMD crack-in-three: bigger than the swap-kernel block
/// so the per-block bulk moves amortize better; three stack buffers of this
/// size is still well under a page.
inline constexpr std::size_t kSimdThreeBlock = 256;

/// Classifies one kSimdThreeBlock block against both cuts and compacts the
/// three regions into caller buffers (each sized kSimdThreeBlock + 8: every
/// compaction store writes a full vector, so up to a vector of garbage
/// spills past the last real element). Lanes claimed by A are never
/// double-counted into C even for degenerate cut pairs, mirroring the
/// scalar kernels' A-first classification.
template <ColumnValue T>
AIDX_TARGET_AVX2 void SimdClassifyThreeBlock(const T* block, T lo_pivot,
                                             bool lo_le, T hi_pivot, bool hi_le,
                                             T* abuf, T* bbuf, T* cbuf,
                                             std::size_t* na_out,
                                             std::size_t* nb_out) {
  constexpr std::size_t kLanes = 32 / sizeof(T);
  constexpr unsigned kAll = (1u << kLanes) - 1u;
  std::size_t na = 0;
  std::size_t nb = 0;
  std::size_t nc = 0;
  for (std::size_t c = 0; c < kSimdThreeBlock; c += kLanes) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + c));
    const unsigned lo_m = LanesBelow(x, lo_pivot, lo_le);
    const unsigned hi_m = LanesBelow(x, hi_pivot, hi_le);
    const unsigned am = lo_m;
    const unsigned bm = hi_m & ~lo_m & kAll;
    const unsigned cm = ~(hi_m | lo_m) & kAll;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(abuf + na),
                        CompactLanes<kLanes>(x, am));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(bbuf + nb),
                        CompactLanes<kLanes>(x, bm));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cbuf + nc),
                        CompactLanes<kLanes>(x, cm));
    na += static_cast<std::size_t>(std::popcount(am));
    nb += static_cast<std::size_t>(std::popcount(bm));
    nc += static_cast<std::size_t>(std::popcount(cm));
  }
  *na_out = na;
  *nb_out = nb;
}

#endif  // AIDX_SIMD_AVX2

/// True when the explicit-intrinsic kernel can run on this host: an AVX2
/// path compiled in and cpuid reporting AVX2, or any aarch64 (NEON is
/// baseline there). Cached after the first call.
inline bool SimdKernelAvailable() {
#if defined(AIDX_SIMD_AVX2)
  static const bool ok = __builtin_cpu_supports("avx2") > 0;
  return ok;
#elif defined(AIDX_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

/// The ISA the kSimd kernel would use on this host (for reports/JSON).
inline const char* SimdIsaName() {
#if defined(AIDX_SIMD_AVX2)
  return SimdKernelAvailable() ? "avx2" : "scalar";
#elif defined(AIDX_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Classifier plug-ins for the blocked kernel: given a full kCrackBlock
/// block, record the offsets of elements misplaced for a kWantBelow side
/// and return how many there are.
template <ColumnValue T, typename BelowFn>
struct ScalarClassifier {
  BelowFn below;
  template <bool kWantBelow>
  std::size_t Classify(const T* block, std::uint8_t* offsets) const {
    return ClassifyBlock<kWantBelow>(block, below, offsets);
  }
};

template <ColumnValue T, CutKind kKind>
struct SimdClassifier {
  T pivot;
  template <bool kWantBelow>
  std::size_t Classify(const T* block, std::uint8_t* offsets) const {
    std::uint64_t misplaced = BelowMask64(block, pivot, kKind == CutKind::kLessEq);
    // Misplaced on the below-seeking side means NOT below; the block is
    // exactly 64 wide, so plain complement flips all and only valid lanes.
    if constexpr (kWantBelow) misplaced = ~misplaced;
    return MaskToOffsets(misplaced, offsets);
  }
};

/// Blocked branch-free partition (the BlockQuicksort scheme): classify one
/// 64-value block per side, swap the misplaced pairs wholesale, retire
/// whichever block came out clean. The remainder (< 2 blocks, plus at most
/// one partially consumed block whose classification we discard — cheaper
/// to rescan than to splice) finishes with the scalar predicated kernel.
/// The classify/compact step is pluggable (scalar flags vs SIMD mask+LUT).
template <bool kTandem, ColumnValue T, typename Payload, typename BelowFn,
          typename Classifier>
std::size_t CrackInTwoBlockedImpl(T* values, Payload* payloads, std::size_t n,
                                  BelowFn below, const Classifier& classifier) {
  constexpr std::size_t kBlock = kCrackBlock;
  std::size_t l = 0;
  std::size_t r = n;
  // +8 slack: the SIMD compaction stores whole 8-byte groups and may write
  // up to 8 bytes past the last real offset.
  std::uint8_t offsets_l[kBlock + 8];
  std::uint8_t offsets_r[kBlock + 8];
  std::size_t num_l = 0, num_r = 0;    // offsets still unconsumed per side
  std::size_t start_l = 0, start_r = 0;  // first unconsumed offset per side
  while (r - l >= 2 * kBlock) {
    if (num_l == 0) {
      start_l = 0;
      num_l = classifier.template Classify</*kWantBelow=*/true>(values + l,
                                                                offsets_l);
    }
    if (num_r == 0) {
      start_r = 0;
      // The right block is values[r - kBlock, r); record offsets from its
      // high end so `r - 1 - offset` addresses the element.
      std::uint8_t raw[kBlock + 8];
      const std::size_t count = classifier.template Classify</*kWantBelow=*/false>(
          values + (r - kBlock), raw);
      for (std::size_t j = 0; j < count; ++j) {
        offsets_r[j] = static_cast<std::uint8_t>(kBlock - 1 - raw[count - 1 - j]);
      }
      num_r = count;
    }
    const std::size_t num = std::min(num_l, num_r);
    for (std::size_t j = 0; j < num; ++j) {
      const std::size_t a = l + offsets_l[start_l + j];
      const std::size_t b = r - 1 - offsets_r[start_r + j];
      std::swap(values[a], values[b]);
      if constexpr (kTandem) std::swap(payloads[a], payloads[b]);
    }
    num_l -= num;
    num_r -= num;
    start_l += num;
    start_r += num;
    if (num_l == 0) l += kBlock;
    if (num_r == 0) r -= kBlock;
  }
  // Scalar tail over [l, r): correct regardless of any discarded partial
  // classification, since the window's content is a valid sub-multiset.
  Payload* tail_payloads = nullptr;
  if constexpr (kTandem) tail_payloads = payloads + l;
  return l + CrackInTwoPredicatedImpl<kTandem>(values + l, tail_payloads, r - l,
                                               below);
}

#if defined(AIDX_SIMD_AVX2)

/// kSimd crack-in-two without a payload: the vectorized partition over the
/// largest whole-vector prefix, then a scalar insertion sweep folds the
/// (sub-vector) tail into the split.
template <ColumnValue T, CutKind kKind>
std::size_t CrackInTwoSimdValuesOnly(T* values, std::size_t n,
                                     BelowPivot<T, kKind> below) {
  constexpr std::size_t kLanes = 32 / sizeof(T);
  std::size_t split = 0;
  std::size_t done = 0;
  const std::size_t main = n & ~(kLanes - 1);
  if (main >= 4 * kLanes) {
    split = SimdPartitionMain(values, main, below.pivot,
                              kKind == CutKind::kLessEq);
    done = main;
  }
  for (std::size_t i = done; i < n; ++i) {
    if (below(values[i])) {
      std::swap(values[i], values[split]);
      ++split;
    }
  }
  return split;
}

#endif  // AIDX_SIMD_AVX2

/// Picks the implementation for one (kernel, tandem) combination. `kernel`
/// must already be concrete (kAuto resolved by the public entry points).
template <ColumnValue T, typename Payload, CutKind kKind>
std::size_t CrackInTwoWithBelow(std::span<T> values, std::span<Payload> payloads,
                                BelowPivot<T, kKind> below, CrackKernel kernel,
                                std::size_t min_piece) {
  T* v = values.data();
  const std::size_t n = values.size();
  if (kernel != CrackKernel::kBranchy) {
    if (min_piece == 0) min_piece = DefaultCrackMinPiece(sizeof(T));
    if (n < min_piece) kernel = CrackKernel::kBranchy;
  }
  if (kernel == CrackKernel::kBranchy) {
    return payloads.empty()
               ? CrackInTwoBranchyImpl<false>(v, static_cast<Payload*>(nullptr), n,
                                              below)
               : CrackInTwoBranchyImpl<true>(v, payloads.data(), n, below);
  }
  if (kernel == CrackKernel::kPredicated) {
    return payloads.empty()
               ? CrackInTwoPredicatedImpl<false>(v, static_cast<Payload*>(nullptr),
                                                 n, below)
               : CrackInTwoPredicatedImpl<true>(v, payloads.data(), n, below);
  }
  if (kernel == CrackKernel::kSimd && SimdKernelAvailable()) {
#if defined(AIDX_SIMD_AVX2)
    // Value-only cracks take the compaction-store partition; tandem cracks
    // keep the blocked scheme (payloads can't ride a lane permutation).
    if (payloads.empty()) return CrackInTwoSimdValuesOnly(v, n, below);
#endif
    const SimdClassifier<T, kKind> classifier{below.pivot};
    return payloads.empty()
               ? CrackInTwoBlockedImpl<false>(v, static_cast<Payload*>(nullptr), n,
                                              below, classifier)
               : CrackInTwoBlockedImpl<true>(v, payloads.data(), n, below,
                                             classifier);
  }
  // kPredicatedUnrolled, or kSimd on a host without a usable vector ISA.
  const ScalarClassifier<T, BelowPivot<T, kKind>> classifier{below};
  return payloads.empty()
             ? CrackInTwoBlockedImpl<false>(v, static_cast<Payload*>(nullptr), n,
                                            below, classifier)
             : CrackInTwoBlockedImpl<true>(v, payloads.data(), n, below,
                                           classifier);
}

/// Single-pass predicated crack-in-three: one left-to-right sweep with two
/// boundary cursors. Invariant at the loop head: [0, a) is region A,
/// [a, b) region B, [b, m) region C. Each step classifies v = values[m]
/// once against both cuts and rotates the three boundary slots branch-free:
/// the first C element moves to the sweep front, the first B element to the
/// C front, and v drops into whichever region front it belongs to — the
/// destination write happens last, so it wins every aliasing case (a == b,
/// b == m, a == b == m). ~3 loads + 3 stores per element, all from
/// addresses known at iteration start (off the critical path), zero
/// mispredicts — versus two full passes for the 2-way decomposition.
///
/// The trailing cursors let a caller resume the sweep mid-array: the SIMD
/// block kernel processes whole blocks and hands the sub-block tail here
/// with its (a, b, m) state, which is exactly this loop's invariant.
template <bool kTandem, ColumnValue T, typename Payload, CutKind kLoKind,
          CutKind kHiKind>
ThreeWaySplit CrackInThreeSinglePassImpl(T* values, Payload* payloads,
                                         std::size_t n,
                                         BelowPivot<T, kLoKind> below_lo,
                                         BelowPivot<T, kHiKind> below_hi,
                                         std::size_t a = 0, std::size_t b = 0,
                                         std::size_t start = 0) {
  for (std::size_t m = start; m < n; ++m) {
    const T v = values[m];
    const T t_a = values[a];
    const T t_b = values[b];
    const bool is_a = below_lo(v);
    const bool is_ab = below_hi(v);
    values[m] = BranchlessSelect(is_ab, t_b, v);
    values[b] = BranchlessSelect(is_a, t_a, t_b);
    const std::size_t dst =
        BranchlessSelect(is_a, a, BranchlessSelect(is_ab, b, m));
    values[dst] = v;
    if constexpr (kTandem) {
      const Payload pv = payloads[m];
      const Payload pt_a = payloads[a];
      const Payload pt_b = payloads[b];
      payloads[m] = BranchlessSelect(is_ab, pt_b, pv);
      payloads[b] = BranchlessSelect(is_a, pt_a, pt_b);
      payloads[dst] = pv;
    }
    a += static_cast<std::size_t>(is_a);
    b += static_cast<std::size_t>(is_ab);
  }
  return {a, b};
}

#if defined(AIDX_SIMD_AVX2)

/// kSimd crack-in-three without a payload: a double-ended single pass. Per
/// block, SIMD-classify into three compacted buffers, then grow A and B
/// from the left end and C from the *right* end of the whole-block region —
/// pieces are unordered, so C built back-to-front is as good as any order,
/// and it means growing C never displaces anything. The only relocation is
/// B's displaced prefix (min(na, |B|) elements) sliding to B's other end.
/// Blocks are consumed from whichever side of the unseen window has less
/// vacated space — the same invariant as the vectorized two-way partition
/// (two blocks buffered up front == two blocks of free space, always
/// enough for the side chosen). The sub-block tail finishes on the scalar
/// rotation, which picks up the (a, b, m) cursors unchanged.
template <ColumnValue T, CutKind kLoKind, CutKind kHiKind>
ThreeWaySplit CrackInThreeSimdValuesOnly(T* values, std::size_t n,
                                         BelowPivot<T, kLoKind> below_lo,
                                         BelowPivot<T, kHiKind> below_hi) {
  constexpr std::size_t kBlock = kSimdThreeBlock;
  std::size_t a = 0;  // end of region A
  std::size_t b = 0;  // end of region B
  std::size_t m = 0;  // end of region C (for the scalar tail's invariant)
  if (n >= 2 * kBlock) {
    const std::size_t main = (n / kBlock) * kBlock;
    alignas(32) T first_block[kBlock];
    alignas(32) T last_block[kBlock];
    std::memcpy(first_block, values, kBlock * sizeof(T));
    std::memcpy(last_block, values + main - kBlock, kBlock * sizeof(T));
    std::size_t rl = kBlock;        // unseen window [rl, rr)
    std::size_t rr = main - kBlock;
    std::size_t z = main;           // start of region C, growing downward
    alignas(32) T abuf[kBlock + 8];
    alignas(32) T bbuf[kBlock + 8];
    alignas(32) T cbuf[kBlock + 8];
    const auto insert = [&](const T* block) {
      std::size_t na = 0;
      std::size_t nb = 0;
      SimdClassifyThreeBlock(block, below_lo.pivot, kLoKind == CutKind::kLessEq,
                             below_hi.pivot, kHiKind == CutKind::kLessEq, abuf,
                             bbuf, cbuf, &na, &nb);
      const std::size_t nc = kBlock - na - nb;
      const std::size_t kb = std::min(na, b - a);
      std::memcpy(values + b + na - kb, values + a, kb * sizeof(T));
      std::memcpy(values + a, abuf, na * sizeof(T));
      std::memcpy(values + b + na, bbuf, nb * sizeof(T));
      std::memcpy(values + z - nc, cbuf, nc * sizeof(T));
      a += na;
      b += na + nb;
      z -= nc;
    };
    while (rl < rr) {
      if (rl - b <= z - rr) {
        insert(values + rl);
        rl += kBlock;
      } else {
        rr -= kBlock;
        insert(values + rr);
      }
    }
    insert(first_block);
    insert(last_block);
    AIDX_DCHECK(b == z);
    m = main;
  }
  return CrackInThreeSinglePassImpl<false, T, row_id_t>(
      values, nullptr, n, below_lo, below_hi, a, b, m);
}

#endif  // AIDX_SIMD_AVX2

/// Expands the runtime cut kinds into the four static combinations the
/// single-pass kernels are compiled for, and picks the block-SIMD or scalar
/// sweep. `kernel` must already be concrete.
template <ColumnValue T, typename Payload>
ThreeWaySplit CrackInThreeSinglePass(std::span<T> values,
                                     std::span<Payload> payloads,
                                     const Cut<T>& lo_cut,
                                     const Cut<T>& hi_cut,
                                     [[maybe_unused]] CrackKernel kernel) {
  const auto run = [&](auto below_lo, auto below_hi) {
    if (!payloads.empty()) {
      return CrackInThreeSinglePassImpl<true>(values.data(), payloads.data(),
                                              values.size(), below_lo,
                                              below_hi);
    }
#if defined(AIDX_SIMD_AVX2)
    if (kernel == CrackKernel::kSimd && SimdKernelAvailable()) {
      return CrackInThreeSimdValuesOnly(values.data(), values.size(), below_lo,
                                        below_hi);
    }
#endif
    return CrackInThreeSinglePassImpl<false>(values.data(),
                                             static_cast<Payload*>(nullptr),
                                             values.size(), below_lo, below_hi);
  };
  if (lo_cut.kind == CutKind::kLess) {
    if (hi_cut.kind == CutKind::kLess) {
      return run(BelowPivot<T, CutKind::kLess>{lo_cut.value},
                 BelowPivot<T, CutKind::kLess>{hi_cut.value});
    }
    return run(BelowPivot<T, CutKind::kLess>{lo_cut.value},
               BelowPivot<T, CutKind::kLessEq>{hi_cut.value});
  }
  if (hi_cut.kind == CutKind::kLess) {
    return run(BelowPivot<T, CutKind::kLessEq>{lo_cut.value},
               BelowPivot<T, CutKind::kLess>{hi_cut.value});
  }
  return run(BelowPivot<T, CutKind::kLessEq>{lo_cut.value},
             BelowPivot<T, CutKind::kLessEq>{hi_cut.value});
}

}  // namespace internal

/// Partitions `values` (and `row_ids` in tandem when non-empty) around `cut`
/// using `kernel` (see the kernel table in the file comment). kAuto resolves
/// to the host-calibrated kernel here — this is the single point of truth,
/// so every strategy wrapper can pass kAuto through unchanged. Pieces
/// smaller than `min_piece` (0 = the calibrated process default) fall back
/// to the branchy sweep.
///
/// Returns the split point m such that Below(cut) holds exactly for
/// [0, m) and fails for [m, n). O(n), no allocation. All kernels preserve
/// the multiset and produce the same m; the order *within* each side is
/// kernel-specific (callers never rely on it — pieces are unordered).
template <ColumnValue T, typename Payload = row_id_t>
std::size_t CrackInTwo(std::span<T> values, std::span<Payload> row_ids,
                       const Cut<T>& cut,
                       CrackKernel kernel = CrackKernel::kAuto,
                       std::size_t min_piece = 0) {
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  if (kernel == CrackKernel::kAuto) kernel = ResolveCrackKernel(kernel, sizeof(T));
  if (cut.kind == CutKind::kLess) {
    return internal::CrackInTwoWithBelow(
        values, row_ids, internal::BelowPivot<T, CutKind::kLess>{cut.value},
        kernel, min_piece);
  }
  return internal::CrackInTwoWithBelow(
      values, row_ids, internal::BelowPivot<T, CutKind::kLessEq>{cut.value},
      kernel, min_piece);
}

/// Element visits a CrackInThree over n values performs. Every kernel now
/// makes a single pass (branchy via the DNF sweep, the predicated family
/// via the single-pass two-cursor kernel), so this is simply n; it stays a
/// named function so the values_touched accounting has one definition.
inline std::size_t CrackInThreeValuesTouched(std::size_t n) { return n; }

/// Partitions into three regions (kernel-selectable):
///   region A: Below(lo_cut)
///   region B: !Below(lo_cut) && Below(hi_cut)   — the qualifying middle
///   region C: !Below(hi_cut)
///
/// Requires lo_cut <= hi_cut (so A and C cannot overlap). The branchy
/// kernel is the classic one-pass Dutch-national-flag sweep; the predicated
/// family uses the single-pass two-cursor kernel (one sweep, branch-free,
/// ~1 pass of memory traffic — bench_e12's three_way section measures it
/// against the old two-pass decomposition, kept as CrackInThreeTwoPass).
template <ColumnValue T, typename Payload = row_id_t>
ThreeWaySplit CrackInThree(std::span<T> values, std::span<Payload> row_ids,
                           const Cut<T>& lo_cut, const Cut<T>& hi_cut,
                           CrackKernel kernel = CrackKernel::kAuto,
                           std::size_t min_piece = 0) {
  AIDX_DCHECK(!(hi_cut < lo_cut));
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  if (kernel == CrackKernel::kAuto) kernel = ResolveCrackKernel(kernel, sizeof(T));
  if (kernel != CrackKernel::kBranchy) {
    if (min_piece == 0) min_piece = DefaultCrackMinPiece(sizeof(T));
    if (values.size() >= min_piece) {
      return internal::CrackInThreeSinglePass(values, row_ids, lo_cut, hi_cut,
                                              kernel);
    }
  }
  const bool tandem = !row_ids.empty();
  std::size_t a = 0;                // next slot of region A
  std::size_t m = 0;                // cursor
  std::size_t z = values.size();    // first slot of region C
  while (m < z) {
    const T v = values[m];
    if (lo_cut.Below(v)) {
      std::swap(values[a], values[m]);
      if (tandem) std::swap(row_ids[a], row_ids[m]);
      ++a;
      ++m;
    } else if (!hi_cut.Below(v)) {
      --z;
      std::swap(values[m], values[z]);
      if (tandem) std::swap(row_ids[m], row_ids[z]);
    } else {
      ++m;
    }
  }
  return {a, z};
}

/// The pre-single-pass decomposition — crack on lo_cut, then re-crack the
/// upper remainder on hi_cut — kept as the reference point: the differential
/// tests oracle the single-pass kernel against it, and bench_e12's
/// three_way section measures what retiring it bought.
template <ColumnValue T, typename Payload = row_id_t>
ThreeWaySplit CrackInThreeTwoPass(std::span<T> values, std::span<Payload> row_ids,
                                  const Cut<T>& lo_cut, const Cut<T>& hi_cut,
                                  CrackKernel kernel = CrackKernel::kAuto,
                                  std::size_t min_piece = 0) {
  AIDX_DCHECK(!(hi_cut < lo_cut));
  AIDX_DCHECK(row_ids.empty() || row_ids.size() == values.size());
  const std::size_t lower =
      CrackInTwo<T, Payload>(values, row_ids, lo_cut, kernel, min_piece);
  const std::size_t middle =
      lower + CrackInTwo<T, Payload>(
                  values.subspan(lower),
                  row_ids.empty() ? row_ids : row_ids.subspan(lower), hi_cut,
                  kernel, min_piece);
  return {lower, middle};
}

}  // namespace aidx
