#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/rng.h"

namespace aidx {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

bool ParseStatusCode(std::string_view name, StatusCode* out) {
  struct Entry {
    std::string_view name;
    StatusCode code;
  };
  static constexpr Entry kCodes[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"already_exists", StatusCode::kAlreadyExists},
      {"out_of_range", StatusCode::kOutOfRange},
      {"resource_exhausted", StatusCode::kResourceExhausted},
      {"not_implemented", StatusCode::kNotImplemented},
      {"internal", StatusCode::kInternal},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
      {"cancelled", StatusCode::kCancelled},
  };
  for (const Entry& e : kCodes) {
    if (e.name == name) {
      *out = e.code;
      return true;
    }
  }
  return false;
}

/// Parses one mode spec — `error`, `error(<code>)`, `delay(<micros>)`,
/// `prob(<p>)`, `prob(<p>,<code>)`, `off` — with an optional `*N` max-hits
/// suffix — into a policy.
Status ParseModeSpec(std::string_view spec, FailpointPolicy* out) {
  *out = FailpointPolicy{};
  spec = Trim(spec);
  if (const auto star = spec.rfind('*'); star != std::string_view::npos &&
                                         spec.find(')', star) == std::string_view::npos) {
    const std::string hits(Trim(spec.substr(star + 1)));
    char* end = nullptr;
    out->max_hits = std::strtoull(hits.c_str(), &end, 10);
    if (end == hits.c_str() || *end != '\0' || out->max_hits == 0) {
      return Status::InvalidArgument("failpoint spec: bad max-hits suffix in '" +
                                     std::string(spec) + "'");
    }
    spec = Trim(spec.substr(0, star));
  }
  std::string_view mode = spec;
  std::string_view args;
  if (const auto open = spec.find('('); open != std::string_view::npos) {
    if (spec.back() != ')') {
      return Status::InvalidArgument("failpoint spec: unbalanced parens in '" +
                                     std::string(spec) + "'");
    }
    mode = Trim(spec.substr(0, open));
    args = Trim(spec.substr(open + 1, spec.size() - open - 2));
  }
  if (mode == "off") {
    out->mode = FailpointMode::kOff;
    return Status::OK();
  }
  if (mode == "error") {
    out->mode = FailpointMode::kError;
    if (!args.empty() && !ParseStatusCode(args, &out->code)) {
      return Status::InvalidArgument("failpoint spec: unknown status code '" +
                                     std::string(args) + "'");
    }
    return Status::OK();
  }
  if (mode == "delay") {
    out->mode = FailpointMode::kDelay;
    const std::string micros(args);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(micros.c_str(), &end, 10);
    if (args.empty() || end == micros.c_str() || *end != '\0') {
      return Status::InvalidArgument("failpoint spec: delay needs micros, got '" +
                                     std::string(args) + "'");
    }
    out->delay_micros = static_cast<std::uint32_t>(v);
    return Status::OK();
  }
  if (mode == "prob") {
    out->mode = FailpointMode::kProbabilistic;
    std::string_view p = args;
    if (const auto comma = args.find(','); comma != std::string_view::npos) {
      p = Trim(args.substr(0, comma));
      const std::string_view code = Trim(args.substr(comma + 1));
      if (!ParseStatusCode(code, &out->code)) {
        return Status::InvalidArgument("failpoint spec: unknown status code '" +
                                       std::string(code) + "'");
      }
    }
    const std::string prob(p);
    char* end = nullptr;
    out->probability = std::strtod(prob.c_str(), &end);
    if (p.empty() || end == prob.c_str() || *end != '\0' || out->probability < 0.0 ||
        out->probability > 1.0) {
      return Status::InvalidArgument("failpoint spec: prob needs p in [0,1], got '" +
                                     std::string(args) + "'");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("failpoint spec: unknown mode '" + std::string(mode) +
                                 "'");
}

}  // namespace

Failpoint::Failpoint(const char* name) : name_(name) {
  FailpointRegistry::Instance().Register(this);
}

void Failpoint::Arm(FailpointPolicy policy) {
  const std::lock_guard<std::mutex> guard(mu_);
  policy_ = std::move(policy);
  fired_ = 0;
  rng_state_ = policy_.seed;
  const bool on = policy_.mode != FailpointMode::kOff;
  armed_.store(on ? 1 : 0, std::memory_order_release);
}

void Failpoint::Disarm() {
  const std::lock_guard<std::mutex> guard(mu_);
  policy_ = FailpointPolicy{};
  fired_ = 0;
  armed_.store(0, std::memory_order_release);
}

void Failpoint::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  evaluations_.store(0, std::memory_order_relaxed);
}

Status Failpoint::Fire(std::string_view scope) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  FailpointMode mode;
  StatusCode code;
  std::string message;
  std::uint32_t delay_micros;
  std::function<Status(std::string_view)> handler;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    if (policy_.mode == FailpointMode::kOff) return Status::OK();  // raced a Disarm
    mode = policy_.mode;
    code = policy_.code;
    message = policy_.message;
    delay_micros = policy_.delay_micros;
    handler = policy_.handler;
    if (mode == FailpointMode::kProbabilistic) {
      const double draw =
          static_cast<double>(SplitMix64(&rng_state_) >> 11) * 0x1.0p-53;
      if (draw >= policy_.probability) return Status::OK();
    }
    ++fired_;
    if (policy_.max_hits != 0 && fired_ >= policy_.max_hits) {
      // Auto-disarm after this fire; subsequent Injects are clean.
      policy_ = FailpointPolicy{};
      fired_ = 0;
      armed_.store(0, std::memory_order_release);
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (message.empty()) {
    message = std::string("injected by failpoint '") + name_ + "'";
  }
  switch (mode) {
    case FailpointMode::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
      return Status::OK();
    case FailpointMode::kError:
    case FailpointMode::kProbabilistic:
      return Status(code, std::move(message));
    case FailpointMode::kCallback:
      return handler ? handler(scope) : Status::OK();
    case FailpointMode::kOff:
      break;
  }
  return Status::OK();
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry registry;
  return registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("AIDX_FAILPOINTS"); env != nullptr) {
    // Registration hasn't happened yet (points register after the registry
    // exists), so this just validates the spec and queues every entry. A
    // malformed spec must not pass silently: a typo would turn a chaos run
    // into a quiet run.
    const Status status = Configure(env);
    if (!status.ok()) {
      AIDX_LOG(Warning) << "ignoring malformed AIDX_FAILPOINTS entry: "
                        << status.ToString();
    }
  }
}

void FailpointRegistry::Register(Failpoint* point) {
  std::pair<std::string, std::string> match;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    points_.push_back(point);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->first == point->name()) {
        match = std::move(*it);
        pending_.erase(it);
        break;
      }
    }
  }
  if (!match.first.empty()) {
    FailpointPolicy policy;
    if (ParseModeSpec(match.second, &policy).ok()) point->Arm(std::move(policy));
  }
}

Failpoint* FailpointRegistry::Find(std::string_view name) {
  const std::lock_guard<std::mutex> guard(mu_);
  for (Failpoint* point : points_) {
    if (name == point->name()) return point;
  }
  return nullptr;
}

std::vector<Failpoint*> FailpointRegistry::List() {
  const std::lock_guard<std::mutex> guard(mu_);
  return points_;
}

Status FailpointRegistry::Configure(std::string_view spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    // Entry separator: ';' or ',', but commas inside parens belong to the
    // mode's argument list — prob(0.5,not_found) is one entry.
    std::size_t end = spec.size();
    int depth = 0;
    for (std::size_t i = begin; i < spec.size(); ++i) {
      const char c = spec[i];
      if (c == '(') ++depth;
      if (c == ')' && depth > 0) --depth;
      if (c == ';' || (c == ',' && depth == 0)) {
        end = i;
        break;
      }
    }
    const std::string_view entry = Trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec: entry '" + std::string(entry) +
                                     "' is not name=mode");
    }
    const std::string_view name = Trim(entry.substr(0, eq));
    const std::string_view mode = Trim(entry.substr(eq + 1));
    FailpointPolicy policy;
    AIDX_RETURN_NOT_OK(ParseModeSpec(mode, &policy));
    if (Failpoint* point = Find(std::string(name))) {
      point->Arm(std::move(policy));
    } else {
      const std::lock_guard<std::mutex> guard(mu_);
      pending_.emplace_back(std::string(name), std::string(mode));
    }
  }
  return Status::OK();
}

void FailpointRegistry::DisarmAll() {
  std::vector<Failpoint*> points;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    points = points_;
    pending_.clear();
  }
  for (Failpoint* point : points) point->Disarm();
}

}  // namespace aidx
