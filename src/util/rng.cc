#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace aidx {

ZipfGenerator::ZipfGenerator(std::size_t n, double theta, std::uint64_t seed)
    : rng_(seed), theta_(theta) {
  AIDX_CHECK(n > 0) << "ZipfGenerator domain must be non-empty";
  AIDX_CHECK(theta >= 0.0) << "Zipf theta must be non-negative";
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = acc;
  }
  const double total = cdf_.back();
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace aidx
