// Deterministic pseudo-random number generation.
//
// All experiment code seeds explicitly so that every figure in
// EXPERIMENTS.md is exactly re-generatable. The core generator is
// xoshiro256**, seeded via SplitMix64 (the reference seeding recipe).
#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace aidx {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(&sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound); bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    AIDX_DCHECK(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform signed value in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    AIDX_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = span == 0 ? Next() : NextBounded(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^theta. Used by the skewed workload pattern.
///
/// Implementation: inverse-CDF over a precomputed cumulative table; O(n)
/// memory and O(log n) per draw, which is fine for the domain sizes the
/// workloads use (hot-region counts, not column sizes).
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta, std::uint64_t seed);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  std::size_t Next();

  std::size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  Rng rng_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace aidx
