// Minimal logging and invariant-checking facility.
//
// AIDX_CHECK(cond) << "context";   // fatal in all builds
// AIDX_DCHECK(cond) << "context";  // fatal in debug builds, elided in NDEBUG
// AIDX_LOG(INFO) << "message";     // leveled logging to stderr
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "util/macros.h"

namespace aidx {
namespace internal {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level actually emitted (default: kInfo).
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

/// Accumulates one log line; emits (and aborts, for kFatal) in the destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  AIDX_DISALLOW_COPY_AND_ASSIGN(LogMessage);

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a check/log is compiled out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace aidx

#define AIDX_LOG_INTERNAL(level) \
  ::aidx::internal::LogMessage(::aidx::internal::LogLevel::level, __FILE__, __LINE__)
#define AIDX_LOG(severity) AIDX_LOG_INTERNAL(k##severity)

#define AIDX_CHECK(cond)              \
  if (AIDX_PREDICT_TRUE(cond)) {      \
  } else /* NOLINT */                 \
    AIDX_LOG(Fatal) << "Check failed: " #cond " "

#define AIDX_CHECK_OK(expr)                                           \
  if (::aidx::Status AIDX_UNIQUE_NAME(_st) = (expr);                  \
      AIDX_PREDICT_TRUE(AIDX_UNIQUE_NAME(_st).ok())) {                \
  } else /* NOLINT */                                                 \
    AIDX_LOG(Fatal) << "Status not OK: " << AIDX_UNIQUE_NAME(_st).ToString() << " "

#define AIDX_CHECK_EQ(a, b) AIDX_CHECK((a) == (b))
#define AIDX_CHECK_NE(a, b) AIDX_CHECK((a) != (b))
#define AIDX_CHECK_LT(a, b) AIDX_CHECK((a) < (b))
#define AIDX_CHECK_LE(a, b) AIDX_CHECK((a) <= (b))
#define AIDX_CHECK_GT(a, b) AIDX_CHECK((a) > (b))
#define AIDX_CHECK_GE(a, b) AIDX_CHECK((a) >= (b))

#ifdef NDEBUG
#define AIDX_DCHECK(cond) \
  while (false) ::aidx::internal::NullLog()
#else
#define AIDX_DCHECK(cond) AIDX_CHECK(cond)
#endif
