// ResourceGovernor: a per-database soft memory budget over the engine's
// auxiliary state — sideways projection maps, pending merge runs / update
// stores, and the striped write buckets.
//
// The budget is SOFT: nothing here ever fails a query or a write. The
// governor answers two questions — "are we over budget?" and "may this
// much more be admitted?" — and the database reacts by degrading: shed the
// sideways map cache (maps are pure acceleration state and rebuild on
// demand) and fall back to scan-plus-crack-later for projections. That
// mirrors the paper's stance that adaptive index state is an investment,
// never a correctness dependency, so under pressure the engine gives the
// memory back and keeps answering queries at scan speed.
//
// Usage accounting is component-tagged absolute gauges (SetUsage), not
// charge/release pairs: the owning structures already know their exact
// sizes, and a gauge cannot leak on an early-return path. All reads are
// relaxed atomics so hot paths can probe pressure for free.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <mutex>
#include <utility>

#include "util/macros.h"

namespace aidx {

enum class ResourceComponent : int {
  kSidewaysMaps = 0,
  kPendingUpdates = 1,
  kWriteBuffers = 2,
};
inline constexpr int kNumResourceComponents = 3;

class ResourceGovernor {
 public:
  static constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

  struct Options {
    /// Soft budget in bytes across all components; kUnlimited disables
    /// every pressure reaction.
    std::size_t soft_budget_bytes = kUnlimited;
  };

  ResourceGovernor() = default;
  explicit ResourceGovernor(Options options) : options_(options) {}

  AIDX_DISALLOW_COPY_AND_ASSIGN(ResourceGovernor);

  std::size_t budget_bytes() const { return options_.soft_budget_bytes; }
  void set_budget_bytes(std::size_t bytes) { options_.soft_budget_bytes = bytes; }
  bool unlimited() const { return options_.soft_budget_bytes == kUnlimited; }

  /// Updates the absolute usage gauge of one component.
  void SetUsage(ResourceComponent component, std::size_t bytes) {
    usage_[static_cast<int>(component)].store(bytes, std::memory_order_relaxed);
  }

  std::size_t UsageOf(ResourceComponent component) const {
    return usage_[static_cast<int>(component)].load(std::memory_order_relaxed);
  }

  std::size_t used_bytes() const {
    std::size_t total = 0;
    for (const auto& gauge : usage_) total += gauge.load(std::memory_order_relaxed);
    return total;
  }

  bool UnderPressure() const {
    return !unlimited() && used_bytes() > options_.soft_budget_bytes;
  }

  /// Admission check: would `incoming_bytes` more fit under the budget?
  /// Denials are counted but carry no obligation beyond "degrade".
  bool Admit(std::size_t incoming_bytes) {
    if (unlimited()) return true;
    const std::size_t used = used_bytes();
    if (incoming_bytes <= options_.soft_budget_bytes &&
        used <= options_.soft_budget_bytes - incoming_bytes) {
      return true;
    }
    admission_denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Installed by the owner; invoked by MaybeShed to give memory back
  /// (the database sheds its sideways map cache here).
  void SetPressureCallback(std::function<void()> callback) {
    const std::lock_guard<std::mutex> guard(mu_);
    pressure_callback_ = std::move(callback);
  }

  /// Runs the pressure callback when current usage plus `incoming_bytes`
  /// would overflow the budget; returns true when a shed was attempted.
  /// Callers re-check Admit afterwards.
  bool MaybeShed(std::size_t incoming_bytes = 0) {
    if (unlimited()) return false;
    const bool over = incoming_bytes > options_.soft_budget_bytes ||
                      used_bytes() > options_.soft_budget_bytes - incoming_bytes;
    if (!over) return false;
    std::function<void()> callback;
    {
      const std::lock_guard<std::mutex> guard(mu_);
      callback = pressure_callback_;
    }
    if (callback) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
      callback();
      return true;
    }
    return false;
  }

  std::size_t admission_denials() const {
    return admission_denials_.load(std::memory_order_relaxed);
  }
  std::size_t sheds() const { return sheds_.load(std::memory_order_relaxed); }

 private:
  Options options_;
  std::array<std::atomic<std::size_t>, kNumResourceComponents> usage_{};
  std::atomic<std::size_t> admission_denials_{0};
  std::atomic<std::size_t> sheds_{0};
  std::mutex mu_;
  std::function<void()> pressure_callback_;
};

}  // namespace aidx
