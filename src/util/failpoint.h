// Failpoint: named, registry-listed fault-injection points.
//
// Every layer with side effects declares a failpoint on its mutation path
// (the catalog lives at the bottom of this header; docs/ROBUSTNESS.md
// documents which modes each point honors). A failpoint is DISARMED by
// default and costs exactly one relaxed atomic load on that path — cheap
// enough for piece-granularity crack loops. Armed, it applies a policy:
//
//   kError          return a Status of the configured code
//   kDelay          sleep for the configured duration, then return OK
//   kProbabilistic  return the error with probability p, else OK
//   kCallback       delegate to a std::function (test-only; lets a test
//                   fail selectively by inspecting the injection scope)
//
// Arming is either programmatic (tests call Arm/Disarm or
// FailpointRegistry::Configure) or environmental: AIDX_FAILPOINTS holds a
// `;`- or `,`-separated list of `name=mode` entries parsed at startup,
// e.g.
//
//   AIDX_FAILPOINTS="parallel.bg_merge_step=error;crack.piece=delay(200)"
//
// Mode grammar: `off`, `error`, `error(<code>)`, `delay(<micros>)`,
// `prob(<p>)`, `prob(<p>,<code>)`, each optionally suffixed `*N` to
// auto-disarm after N fires (`error*2` fails twice, then passes). Codes
// use lower_snake names of StatusCode (`internal`, `resource_exhausted`,
// `deadline_exceeded`, ...).
//
// Points whose call sites cannot propagate Status (void crack loops
// reached without a QueryContext, ripple moves inside row-atomic apply
// phases) swallow injected errors and honor only the delay/hit-counting
// side of the policy; the catalog marks these delay-only.
//
// Defining AIDX_NO_FAILPOINTS compiles every check out entirely (the
// bench guard's "build without them" baseline).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace aidx {

enum class FailpointMode : char {
  kOff = 0,
  kError,
  kDelay,
  kProbabilistic,
  kCallback,
};

/// Behavior of one armed failpoint. Plain aggregate so tests can brace-init.
struct FailpointPolicy {
  FailpointMode mode = FailpointMode::kOff;
  /// Code injected by kError / kProbabilistic fires.
  StatusCode code = StatusCode::kInternal;
  /// Message attached to injected errors (a default is derived if empty).
  std::string message;
  /// Sleep applied by kDelay fires, in microseconds.
  std::uint32_t delay_micros = 0;
  /// Fire probability for kProbabilistic, in [0, 1].
  double probability = 1.0;
  /// Auto-disarm after this many fires; 0 means unlimited.
  std::uint64_t max_hits = 0;
  /// Seed for the probabilistic draw (deterministic schedules).
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
  /// kCallback handler; receives the call site's scope string (for the DML
  /// point: "<table>\x1f<column>").
  std::function<Status(std::string_view scope)> handler;
};

class Failpoint {
 public:
  /// Registers the point under `name` in the global registry and applies
  /// any matching AIDX_FAILPOINTS entry. `name` must outlive the process
  /// (string literals only — the catalog below).
  explicit Failpoint(const char* name);

  AIDX_DISALLOW_COPY_AND_ASSIGN(Failpoint);

  const char* name() const { return name_; }

  /// True when a policy is armed. One relaxed load; call sites that need
  /// to build a scope string first should gate on this.
  bool armed() const {
#ifdef AIDX_NO_FAILPOINTS
    return false;
#else
    return armed_.load(std::memory_order_relaxed) != 0;
#endif
  }

  /// The hot-path check: OK when disarmed (one relaxed atomic load),
  /// otherwise evaluates the armed policy.
  Status Inject(std::string_view scope = {}) {
#ifdef AIDX_NO_FAILPOINTS
    (void)scope;
    return Status::OK();
#else
    if (AIDX_PREDICT_TRUE(armed_.load(std::memory_order_relaxed) == 0)) {
      return Status::OK();
    }
    return Fire(scope);
#endif
  }

  void Arm(FailpointPolicy policy);
  void Disarm();

  /// Number of times an armed policy actually fired (errors injected,
  /// delays applied, callbacks run). Probabilistic non-fires don't count.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Number of times Inject() found the point armed (fired or not).
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

 private:
  Status Fire(std::string_view scope);

  const char* name_;
  std::atomic<int> armed_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  mutable std::mutex mu_;
  FailpointPolicy policy_;       // guarded by mu_
  std::uint64_t fired_ = 0;      // guarded by mu_; drives max_hits
  std::uint64_t rng_state_ = 0;  // guarded by mu_; probabilistic draws
};

/// Process-wide name -> Failpoint* table. Points register themselves at
/// construction; the registry never owns them.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  void Register(Failpoint* point);
  /// nullptr when no point with that name exists (yet).
  Failpoint* Find(std::string_view name);
  std::vector<Failpoint*> List();

  /// Parses an AIDX_FAILPOINTS-style spec ("name=mode;name=mode") and arms
  /// the named points. Unknown names are remembered and applied if such a
  /// point registers later (env specs must work regardless of static-init
  /// order). Malformed entries yield InvalidArgument.
  Status Configure(std::string_view spec);

  void DisarmAll();

 private:
  FailpointRegistry();

  std::mutex mu_;
  std::vector<Failpoint*> points_;
  // name=mode entries whose point has not registered yet.
  std::vector<std::pair<std::string, std::string>> pending_;
};

/// Scope-string separator for multi-part scopes (table/column).
inline constexpr char kFailpointScopeSep = '\x1f';

// ---------------------------------------------------------------------------
// Catalog. One inline global per point: call sites hold a direct reference,
// so a disarmed check is a single relaxed load with no registry lookup.
// Modes honored are noted per point; see docs/ROBUSTNESS.md.
// ---------------------------------------------------------------------------
namespace failpoints {

/// Before each piece-level crack (CrackerColumn resolve/stochastic loops and
/// the striped resolve/crack-in-three paths). Errors surface only on
/// QueryContext-carrying paths; otherwise delay-only.
inline Failpoint crack_piece{"crack.piece"};

/// SegmentOrganizer organize/append steps (adaptive merging, hybrids).
/// Delay-only: the organizer's callers cannot propagate Status.
inline Failpoint organizer_step{"organizer.step"};

/// Per-column validate step of row-atomic DML (Database::PrepareRowDml).
/// Error- and callback-capable; fires before any mutation, so a fired
/// error aborts the whole row with no torn state.
inline Failpoint engine_dml_validate{"engine.dml_validate"};

/// Just before a background-merge task is handed to the pool. An injected
/// error simulates submission failure: the column must degrade to
/// foreground merging.
inline Failpoint parallel_bg_submit{"parallel.bg_submit"};

/// Each chunk round of a running background merge. An injected error fails
/// the merge attempt: the column retries with capped exponential backoff,
/// then degrades to foreground. Buffered writes are never lost.
inline Failpoint parallel_bg_merge_step{"parallel.bg_merge_step"};

/// ThreadPool::TrySubmit; an injected error makes it return false.
inline Failpoint threadpool_submit{"threadpool.submit"};

/// SidewaysCracker::SelectProject entry. Error-capable (Status-returning
/// path); the database surfaces the error to the caller unchanged.
inline Failpoint sideways_select{"sideways.select"};

/// Sideways ripple ops (ApplyInsert/ApplyDelete across clones).
/// Delay-only: fires inside the cannot-fail apply phase of row-atomic DML.
inline Failpoint sideways_ripple{"sideways.ripple"};

/// Table::AddColumn entry (schema changes). Error-capable.
inline Failpoint storage_add_column{"storage.add_column"};

/// Table::CommitAppendedRow (apply phase). Delay-only.
inline Failpoint storage_commit_row{"storage.commit_row"};

/// ShardRouter::ShardOf — every routed DML and rebalance boundary lookup.
/// Error-capable; fires before the owning node is touched, so a routed
/// operation aborts with no shard mutated. Scope: the table name.
inline Failpoint dist_route{"dist.route"};

/// Per-shard scatter task entry (ShardedDatabase Count/Sum/SelectProject
/// fan-out). Error-capable: an injected error fails that shard's leg and
/// cancels the remaining legs via the chained scatter token. Scope:
/// "table\x1fshard<i>".
inline Failpoint dist_scatter{"dist.scatter"};

/// Per serialized piece-bundle chunk during Rebalance. Error-capable, and
/// evaluated in the rebalance validate phase — before the first row leaves
/// the source shard — so a fired error aborts the whole migration with
/// both shards untouched. Scope: "table\x1fpiece<i>".
inline Failpoint dist_migrate_piece{"dist.migrate_piece"};

}  // namespace failpoints

}  // namespace aidx
