// Wall-clock timing utilities used by the benchmark harness and the
// workload runner.
#pragma once

#include <chrono>
#include <cstdint>

namespace aidx {

/// Monotonic stopwatch measuring wall-clock time in seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the lifetime of the scope to an accumulator (in seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { *accumulator_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  WallTimer timer_;
};

}  // namespace aidx
