// QueryContext: per-query deadline and cancellation, threaded from the
// Database facade down into the piece-level crack loops.
//
// Contract (docs/ROBUSTNESS.md): contexts are checked at piece granularity
// — once before each piece-level crack, never mid-crack — so an expired or
// cancelled query unwinds with Status::DeadlineExceeded / Cancelled while
// the index stays ValidatePieces-clean. Partial cracks performed before
// the expiry are KEPT: per the adaptive-indexing papers they are
// legitimate incremental investment that future queries profit from, not
// torn state to roll back. A background context (the default) makes every
// check a no-op branch, so ctx-free callers pay nothing.
//
// Cost: cancellation is one relaxed atomic load per piece; a deadline adds
// a steady_clock read, which is noise next to the crack it gates.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "util/status.h"

namespace aidx {

/// Shared cancellation flag; hand the same token to the query and to
/// whatever decides to cancel it (another thread, a timeout reaper, ...).
///
/// Tokens chain: a token built with Chained(parent) reports cancelled when
/// either it or the parent is cancelled, while Cancel() on the child never
/// touches the parent. The dist scatter layer uses this to give each
/// fan-out its own kill switch (first shard error cancels the sibling
/// legs) without being able to cancel the caller's query as a whole.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  /// A fresh token that also observes `parent` (which may be null — then
  /// this is just a new independent token).
  static std::shared_ptr<CancellationToken> Chained(
      std::shared_ptr<const CancellationToken> parent) {
    auto token = std::make_shared<CancellationToken>();
    token->parent_ = std::move(parent);
    return token;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::shared_ptr<const CancellationToken> parent_;
};

class QueryContext {
 public:
  /// No deadline, no token: Check() always passes.
  QueryContext() = default;

  static QueryContext Background() { return QueryContext(); }

  static QueryContext WithDeadline(std::chrono::steady_clock::time_point deadline) {
    QueryContext ctx;
    ctx.deadline_ = deadline;
    ctx.has_deadline_ = true;
    return ctx;
  }

  static QueryContext WithTimeout(std::chrono::nanoseconds budget) {
    return WithDeadline(std::chrono::steady_clock::now() + budget);
  }

  /// Attaches a cancellation token; composes with a deadline.
  QueryContext& SetToken(std::shared_ptr<CancellationToken> token) {
    token_ = std::move(token);
    return *this;
  }

  /// A child context for one leg of a fan-out: same deadline, but a fresh
  /// token chained to this context's token. Cancelling the returned
  /// context's token stops that leg (and its siblings, if they share it)
  /// without cancelling the parent query.
  QueryContext Derived() const {
    QueryContext child = *this;
    child.token_ = CancellationToken::Chained(token_);
    return child;
  }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }
  const std::shared_ptr<CancellationToken>& token() const { return token_; }

  /// True when any check could ever fail; callers on hot paths skip the
  /// whole gate for background contexts.
  bool active() const { return has_deadline_ || token_ != nullptr; }

  /// OK, or Cancelled / DeadlineExceeded. Cancellation wins ties: an
  /// explicit cancel is a stronger signal than the clock.
  Status Check() const {
    if (token_ != nullptr && token_->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::shared_ptr<CancellationToken> token_;
};

}  // namespace aidx
