#include "util/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace aidx {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    const std::lock_guard<std::mutex> guard(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Destroy dropped tasks outside the lock: a closure's destructor may run
  // arbitrary cleanup (merge-ticket release) that probes this pool again.
  std::deque<std::function<void()>> dropped;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    dropped.swap(queue_);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  AIDX_CHECK(task != nullptr);
  {
    const std::lock_guard<std::mutex> guard(mu_);
    AIDX_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  AIDX_CHECK(task != nullptr);
  // Injected submission failure behaves exactly like a stopping pool: the
  // closure is destroyed here (releasing its tickets) and we report false.
  if (AIDX_PREDICT_FALSE(!failpoints::threadpool_submit.Inject().ok())) return false;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // pending-but-unstarted tasks are dropped
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared state of one ParallelFor call. Helper tasks hold it via
// shared_ptr, so a helper that is dequeued only after the loop already
// completed (every index claimed by faster threads) still finds valid
// state, sees next >= total, and exits without touching `fn`.
struct ParallelForState {
  std::function<void(std::size_t)> fn;
  std::size_t total = 0;
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t completed = 0;
};

void DrainIterations(const std::shared_ptr<ParallelForState>& state) {
  std::size_t finished = 0;
  for (;;) {
    const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->total) break;
    state->fn(i);
    ++finished;
  }
  if (finished == 0) return;
  const std::lock_guard<std::mutex> guard(state->mu);
  state->completed += finished;
  if (state->completed == state->total) state->done_cv.notify_all();
}

}  // namespace

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->fn = fn;
  state->total = n;
  // At most n-1 helpers: the caller claims at least one iteration itself.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    // TrySubmit, not Submit: racing a Shutdown just means fewer helpers;
    // the caller's own DrainIterations still completes every iteration.
    if (!TrySubmit([state] { DrainIterations(state); })) break;
  }
  DrainIterations(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->completed == state->total; });
}

}  // namespace aidx
