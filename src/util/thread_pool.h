// ThreadPool: a small fixed-size worker pool for intra-query parallelism.
//
// Ownership: a ThreadPool owns its worker threads and its task queue, and
// nothing else — submitted closures must keep whatever they touch alive.
// The pool is created with a fixed worker count, joins every worker in the
// destructor, and is shared by reference: PartitionedCrackerColumn borrows
// a pool (it never owns one) so that one pool can serve many columns
// without oversubscribing the machine. Destroying a pool while another
// thread still calls Submit/ParallelFor on it is a caller bug.
//
// Usage:
//   ThreadPool pool(3);                       // 3 workers
//   pool.ParallelFor(8, [&](std::size_t i) {  // caller participates too,
//     ProcessPartition(i);                    // so 4 threads share 8 tasks
//   });                                       // returns when all 8 are done
//
// ParallelFor is deadlock-free by construction: the calling thread drains
// iterations alongside the workers, so the loop completes even when every
// worker is busy with other submissions (including nested ParallelFor
// calls from inside a worker). Closures must not throw — an escaping
// exception terminates the process, which matches the AIDX_CHECK policy
// used throughout this code base.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace aidx {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Zero is valid: Submit still queues (tasks
  /// run only via ParallelFor's caller participation or never), and
  /// ParallelFor degrades to an inline loop.
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; queued tasks that never started are dropped.
  ~ThreadPool();

  AIDX_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Stops accepting work, joins every worker, and destroys queued tasks
  /// that never started (their closures are destroyed, which releases any
  /// RAII tickets they carry — see the merge mode machine). Idempotent;
  /// the destructor calls it. After Shutdown, TrySubmit returns false,
  /// num_threads() is 0, and ParallelFor degrades to an inline loop, so a
  /// stopped pool can safely outlive the columns borrowing it.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for some worker. Fire-and-forget: there is no handle,
  /// so tasks needing completion signalling should use ParallelFor or carry
  /// their own latch.
  void Submit(std::function<void()> task);

  /// Like Submit, but returns false instead of CHECK-failing when the pool
  /// is already stopping. Background maintenance (the partitioned column's
  /// merge tasks) races pool shutdown by design and must degrade to "did
  /// not run" rather than crash.
  bool TrySubmit(std::function<void()> task);

  /// Runs fn(0), ..., fn(n-1) across the workers and the calling thread;
  /// returns when all n iterations have finished. Iterations are claimed
  /// from a shared counter, so uneven per-iteration costs balance
  /// automatically. `fn` may be invoked concurrently from several threads.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aidx
