#include "util/status.h"

namespace aidx {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out{StatusCodeToString(state_->code)};
  if (!state_->msg.empty()) {
    out += ": ";
    out += state_->msg;
  }
  return out;
}

}  // namespace aidx
