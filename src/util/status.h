// Status: the error-reporting vocabulary of the library.
//
// Library code does not throw exceptions (per the style rules this project
// follows); fallible operations return Status, or Result<T> when they also
// produce a value. Invariant violations that indicate programmer error are
// handled with AIDX_CHECK (see logging.h), not Status.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "util/macros.h"

namespace aidx {

/// Machine-readable classification of an error.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kCancelled = 9,
};

/// Returns a stable human-readable name for a status code ("Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// The OK state is represented by a null internal pointer, so passing and
/// returning OK statuses is free of allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  std::string_view message() const {
    return ok() ? std::string_view{} : std::string_view{state_->msg};
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null == OK
};

}  // namespace aidx

/// Propagates a non-OK Status to the caller.
#define AIDX_RETURN_NOT_OK(expr)                            \
  do {                                                      \
    ::aidx::Status AIDX_UNIQUE_NAME(_st) = (expr);          \
    if (AIDX_PREDICT_FALSE(!AIDX_UNIQUE_NAME(_st).ok())) {  \
      return AIDX_UNIQUE_NAME(_st);                         \
    }                                                       \
  } while (false)
