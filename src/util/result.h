// Result<T>: value-or-Status, the return type of fallible value-producing
// operations (the Arrow idiom).
#pragma once

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace aidx {

/// Holds either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                         // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    AIDX_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK Status carries no value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error; OK() if this Result holds a value.
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value access; callers must check ok() first (checked in all builds).
  const T& value() const& {
    AIDX_CHECK(ok()) << "Result::value() on error: " << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    AIDX_CHECK(ok()) << "Result::value() on error: " << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AIDX_CHECK(ok()) << "Result::value() on error: " << std::get<Status>(repr_).ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? std::get<T>(repr_) : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace aidx

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// binds the value to `lhs` (which may include a declaration).
#define AIDX_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  AIDX_ASSIGN_OR_RETURN_IMPL(AIDX_UNIQUE_NAME(_res), lhs, rexpr)

#define AIDX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)            \
  auto tmp = (rexpr);                                          \
  if (AIDX_PREDICT_FALSE(!tmp.ok())) {                         \
    return tmp.status();                                       \
  }                                                            \
  lhs = std::move(tmp).value()
