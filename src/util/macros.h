// Common helper macros shared across the aidx code base.
#pragma once

#define AIDX_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;           \
  TypeName& operator=(const TypeName&) = delete

#define AIDX_DEFAULT_MOVE_ONLY(TypeName)        \
  AIDX_DISALLOW_COPY_AND_ASSIGN(TypeName);      \
  TypeName(TypeName&&) noexcept = default;      \
  TypeName& operator=(TypeName&&) noexcept = default

#if defined(__GNUC__) || defined(__clang__)
#define AIDX_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define AIDX_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define AIDX_FORCE_INLINE inline __attribute__((always_inline))
#else
#define AIDX_PREDICT_TRUE(x) (x)
#define AIDX_PREDICT_FALSE(x) (x)
#define AIDX_FORCE_INLINE inline
#endif

// Token pasting helpers used by the Status/Result propagation macros.
#define AIDX_CONCAT_IMPL(x, y) x##y
#define AIDX_CONCAT(x, y) AIDX_CONCAT_IMPL(x, y)
#define AIDX_UNIQUE_NAME(base) AIDX_CONCAT(base, __LINE__)
