// A reader/writer mutex with strict writer priority.
//
// std::shared_mutex on glibc maps to a reader-preferring pthread rwlock:
// under a steady stream of readers a writer can wait unboundedly, because
// new readers keep acquiring while the writer is queued. The dist layer's
// topology lock cannot live with that — every query holds it shared, so a
// Rebalance (the only exclusive acquirer) would see seconds of latency on
// a busy store. This lock blocks NEW readers as soon as a writer is
// waiting: the writer gets in after at most the in-flight readers drain,
// making rebalance latency bounded by the longest running query.
//
// Not reentrant, not upgradeable. Satisfies the SharedMutex interface
// subset std::shared_lock / std::unique_lock use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/macros.h"

namespace aidx {

class WriterPriorityMutex {
 public:
  WriterPriorityMutex() = default;
  AIDX_DISALLOW_COPY_AND_ASSIGN(WriterPriorityMutex);

  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock, [&] { return writers_waiting_ == 0 && !writer_active_; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writers_waiting_ != 0 || writer_active_) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--readers_ == 0) writer_cv_.notify_one();
  }

  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [&] { return readers_ == 0 && !writer_active_; });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lock(mu_);
    if (readers_ != 0 || writer_active_) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::unique_lock<std::mutex> lock(mu_);
    writer_active_ = false;
    if (writers_waiting_ != 0) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  std::size_t readers_ = 0;
  std::size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace aidx
