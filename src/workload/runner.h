// The workload runner: executes a predicate sequence — or a mixed
// read/write op sequence — against one strategy, recording per-op
// wall-clock times — the raw series behind every figure in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/access_path.h"
#include "storage/predicate.h"
#include "workload/query_generator.h"

namespace aidx {

/// One strategy's run over one workload.
struct RunResult {
  std::string strategy;
  std::string workload;
  std::vector<double> per_query_seconds;
  /// Sum of all result counts: equal across strategies iff they agree.
  std::uint64_t count_checksum = 0;
  /// Mixed workloads only: how many deletes found a victim — also equal
  /// across strategies iff they agree on the live multiset.
  std::uint64_t deletes_applied = 0;

  double total_seconds() const;
  double first_query_seconds() const;
  /// Cumulative average cost of the first `i+1` queries.
  double cumulative_average(std::size_t i) const;
  /// Mean of the final `window` queries (steady-state estimate).
  double tail_mean(std::size_t window) const;
};

/// Runs `queries` against a lazily built access path. The factory runs
/// inside the first query's timing window, so initialization (copying,
/// sorting runs, ...) is charged to the first query, as in the papers.
RunResult RunWorkload(
    const std::function<std::unique_ptr<AccessPath<std::int64_t>>()>& factory,
    std::span<const RangePredicate<std::int64_t>> queries, std::string strategy_name,
    std::string workload_name);

/// Convenience overload: build the path from a borrowed column + config.
RunResult RunWorkload(std::span<const std::int64_t> base, const StrategyConfig& config,
                      std::span<const RangePredicate<std::int64_t>> queries,
                      std::string workload_name);

/// Runs a mixed read/write op sequence through the uniform AccessPath
/// interface — every strategy absorbs the same inserts/deletes through its
/// own write path. Timing and lazy-construction rules match RunWorkload;
/// every op (reads and writes alike) contributes one per_query_seconds
/// entry.
RunResult RunMixedWorkload(
    const std::function<std::unique_ptr<AccessPath<std::int64_t>>()>& factory,
    std::span<const WorkloadOp> ops, std::string strategy_name,
    std::string workload_name);

/// Convenience overload: build the path from a borrowed column + config.
RunResult RunMixedWorkload(std::span<const std::int64_t> base,
                           const StrategyConfig& config,
                           std::span<const WorkloadOp> ops,
                           std::string workload_name);

}  // namespace aidx
