#include "workload/metrics.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace aidx {

namespace {

/// Median of series[i .. i+window) (window clamped to the series end).
double WindowMedian(const std::vector<double>& series, std::size_t i,
                    std::size_t window) {
  const std::size_t end = std::min(series.size(), i + window);
  std::vector<double> buf(series.begin() + static_cast<std::ptrdiff_t>(i),
                          series.begin() + static_cast<std::ptrdiff_t>(end));
  const std::size_t mid = buf.size() / 2;
  std::nth_element(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(mid),
                   buf.end());
  return buf[mid];
}

}  // namespace

BenchmarkMetrics ComputeMetrics(const RunResult& run, double scan_seconds,
                                double reference_seconds,
                                const MetricsOptions& options) {
  BenchmarkMetrics m;
  m.strategy = run.strategy;
  m.workload = run.workload;
  if (run.per_query_seconds.empty()) return m;
  m.first_query_seconds = run.first_query_seconds();
  m.first_query_overhead =
      scan_seconds > 0 ? m.first_query_seconds / scan_seconds : 0.0;
  m.total_seconds = run.total_seconds();
  m.steady_state_seconds = run.tail_mean(options.tail_window);

  const double threshold = options.convergence_factor * reference_seconds;
  const auto& series = run.per_query_seconds;
  // Earliest i whose smoothed cost — and that of every later window — stays
  // under the threshold: find the last window above threshold.
  std::ptrdiff_t last_above = -1;
  for (std::size_t i = 0; i < series.size(); i += 1) {
    if (WindowMedian(series, i, options.smoothing_window) > threshold) {
      last_above = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (last_above + 1 < static_cast<std::ptrdiff_t>(series.size())) {
    m.queries_to_convergence = last_above + 1;
  } else {
    m.queries_to_convergence = -1;  // never converged within the run
  }
  return m;
}

}  // namespace aidx
