#include "workload/report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace aidx {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  AIDX_CHECK(row.size() == header_.size())
      << "row width " << row.size() << " != header width " << header_.size();
  rows_.push_back(std::move(row));
}

namespace {
bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}
}  // namespace

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      if (LooksNumeric(row[c])) {
        os << std::setw(static_cast<int>(widths[c])) << std::right << row[c];
      } else {
        os << std::setw(static_cast<int>(widths[c])) << std::left << row[c];
      }
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 0) seconds = 0;
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(header);
  for (const auto& row : rows) write_row(row);
  return Status::OK();
}

std::vector<std::size_t> LogSpacedIndices(std::size_t n) {
  std::vector<std::size_t> out;
  if (n == 0) return out;
  std::size_t i = 0;
  while (i < n) {
    out.push_back(i);
    if (i + 1 >= n && i != n - 1) break;
    i = i == 0 ? 1 : i * 2;
  }
  if (out.back() != n - 1) out.push_back(n - 1);
  return out;
}

void PrintSeriesComparison(std::ostream& os, const std::vector<RunResult>& runs,
                           const std::string& csv_path) {
  if (runs.empty()) return;
  const std::size_t n = runs.front().per_query_seconds.size();
  std::vector<std::string> header = {"query"};
  for (const auto& run : runs) header.push_back(run.strategy);
  TablePrinter table(header);
  for (const std::size_t i : LogSpacedIndices(n)) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const auto& run : runs) {
      row.push_back(FormatSeconds(run.per_query_seconds[i]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(os);

  if (!csv_path.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::string> row = {std::to_string(i + 1)};
      for (const auto& run : runs) {
        std::ostringstream cell;
        cell << std::setprecision(9) << run.per_query_seconds[i];
        row.push_back(cell.str());
      }
      rows.push_back(std::move(row));
    }
    const Status st = WriteCsv(csv_path, header, rows);
    if (!st.ok()) {
      AIDX_LOG(Warning) << "CSV not written: " << st.ToString();
    } else {
      os << "(full series: " << csv_path << ")\n";
    }
  }
}

}  // namespace aidx
