#include "workload/data_generator.h"

#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace aidx {

const char* DataDistributionName(DataDistribution dist) {
  switch (dist) {
    case DataDistribution::kUniform:
      return "uniform";
    case DataDistribution::kPermutation:
      return "permutation";
    case DataDistribution::kNearlySorted:
      return "nearly-sorted";
    case DataDistribution::kZipfValues:
      return "zipf-values";
  }
  return "?";
}

std::vector<std::int64_t> GenerateData(const DataSpec& spec) {
  AIDX_CHECK(spec.domain > 0) << "data domain must be positive";
  Rng rng(spec.seed);
  std::vector<std::int64_t> out(spec.n);
  switch (spec.distribution) {
    case DataDistribution::kUniform: {
      for (auto& v : out) {
        v = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(spec.domain)));
      }
      break;
    }
    case DataDistribution::kPermutation: {
      std::iota(out.begin(), out.end(), std::int64_t{0});
      // Fisher-Yates.
      for (std::size_t i = out.size(); i > 1; --i) {
        const std::size_t j = rng.NextBounded(i);
        std::swap(out[i - 1], out[j]);
      }
      break;
    }
    case DataDistribution::kNearlySorted: {
      std::iota(out.begin(), out.end(), std::int64_t{0});
      const auto swaps = static_cast<std::size_t>(
          spec.disorder * static_cast<double>(spec.n));
      for (std::size_t s = 0; s < swaps && spec.n > 1; ++s) {
        const std::size_t a = rng.NextBounded(spec.n);
        const std::size_t b = rng.NextBounded(spec.n);
        std::swap(out[a], out[b]);
      }
      break;
    }
    case DataDistribution::kZipfValues: {
      // Draw ranks from a zipf law over min(domain, 64k) distinct values,
      // spread across the domain so ranges still select meaningfully.
      const std::size_t distinct = static_cast<std::size_t>(
          std::min<std::int64_t>(spec.domain, 1 << 16));
      ZipfGenerator zipf(distinct, spec.zipf_theta, rng.Next());
      const std::int64_t stride =
          std::max<std::int64_t>(1, spec.domain / static_cast<std::int64_t>(distinct));
      for (auto& v : out) {
        v = static_cast<std::int64_t>(zipf.Next()) * stride;
      }
      break;
    }
  }
  return out;
}

}  // namespace aidx
