#include "workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace aidx {

const char* QueryPatternName(QueryPattern pattern) {
  switch (pattern) {
    case QueryPattern::kRandom:
      return "random";
    case QueryPattern::kSkewed:
      return "skewed";
    case QueryPattern::kSequential:
      return "sequential";
    case QueryPattern::kPeriodic:
      return "periodic";
    case QueryPattern::kZoomIn:
      return "zoom-in";
    case QueryPattern::kZoomOut:
      return "zoom-out";
    case QueryPattern::kShiftingHotspot:
      return "shifting-hotspot";
  }
  return "?";
}

namespace {

using Pred = RangePredicate<std::int64_t>;

/// Clamps [lo, lo+width) into the domain and emits the half-open predicate.
Pred MakeRange(std::int64_t lo, std::int64_t width, std::int64_t domain) {
  if (width < 1) width = 1;
  if (lo < 0) lo = 0;
  if (lo + width > domain) lo = std::max<std::int64_t>(0, domain - width);
  return Pred::HalfOpen(lo, lo + width);
}

}  // namespace

std::vector<Pred> GenerateQueries(const WorkloadSpec& spec) {
  AIDX_CHECK(spec.domain > 0) << "query domain must be positive";
  AIDX_CHECK(spec.selectivity > 0 && spec.selectivity <= 1.0)
      << "selectivity must be in (0, 1]";
  Rng rng(spec.seed);
  const auto width = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(spec.selectivity * static_cast<double>(spec.domain)));
  const std::int64_t positions = std::max<std::int64_t>(1, spec.domain - width + 1);

  std::vector<Pred> out;
  out.reserve(spec.num_queries);
  switch (spec.pattern) {
    case QueryPattern::kRandom: {
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        const auto lo = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(positions)));
        out.push_back(MakeRange(lo, width, spec.domain));
      }
      break;
    }
    case QueryPattern::kSkewed: {
      // Hot positions chosen once, visited with zipf frequency + jitter.
      const std::size_t hotspots = std::max<std::size_t>(1, spec.num_hotspots);
      std::vector<std::int64_t> centers(hotspots);
      for (auto& c : centers) {
        c = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(positions)));
      }
      ZipfGenerator zipf(hotspots, spec.zipf_theta, rng.Next());
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        const std::int64_t jitter = rng.NextInRange(-width / 2, width / 2);
        out.push_back(MakeRange(centers[zipf.Next()] + jitter, width, spec.domain));
      }
      break;
    }
    case QueryPattern::kSequential: {
      // March left-to-right, wrapping; consecutive ranges abut.
      const std::int64_t step = width;
      std::int64_t lo = 0;
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        out.push_back(MakeRange(lo, width, spec.domain));
        lo += step;
        if (lo >= spec.domain - width) lo = 0;
      }
      break;
    }
    case QueryPattern::kPeriodic: {
      // Round-robin over `period` regions; random position inside a region.
      const std::size_t period = std::max<std::size_t>(1, spec.period);
      const std::int64_t region =
          std::max<std::int64_t>(width, spec.domain / static_cast<std::int64_t>(period));
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        const auto r = static_cast<std::int64_t>(q % period);
        const std::int64_t base = r * region;
        const std::int64_t span = std::max<std::int64_t>(1, region - width + 1);
        const auto lo =
            base + static_cast<std::int64_t>(
                       rng.NextBounded(static_cast<std::uint64_t>(span)));
        out.push_back(MakeRange(lo, width, spec.domain));
      }
      break;
    }
    case QueryPattern::kZoomIn: {
      // Repeatedly halve toward a random focus; restart when narrow.
      std::int64_t lo = 0;
      std::int64_t hi = spec.domain;
      std::int64_t focus = spec.domain / 2;
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        if (hi - lo <= 2 * width) {
          lo = 0;
          hi = spec.domain;
          focus = static_cast<std::int64_t>(
              rng.NextBounded(static_cast<std::uint64_t>(spec.domain)));
        }
        out.push_back(Pred::HalfOpen(lo, hi));
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (focus < mid) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      break;
    }
    case QueryPattern::kZoomOut: {
      // Start at a narrow range and double outward; restart when wide.
      std::int64_t focus = spec.domain / 2;
      std::int64_t half = width / 2 + 1;
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        if (2 * half >= spec.domain) {
          focus = static_cast<std::int64_t>(
              rng.NextBounded(static_cast<std::uint64_t>(spec.domain)));
          half = width / 2 + 1;
        }
        out.push_back(MakeRange(focus - half, 2 * half, spec.domain));
        half *= 2;
      }
      break;
    }
    case QueryPattern::kShiftingHotspot: {
      const std::size_t phases = std::max<std::size_t>(1, spec.hotspot_phases);
      const std::size_t phase_len =
          std::max<std::size_t>(1, spec.num_queries / phases);
      const auto region_width = std::max<std::int64_t>(
          width, static_cast<std::int64_t>(spec.hotspot_width *
                                           static_cast<double>(spec.domain)));
      std::int64_t region_lo = 0;
      for (std::size_t q = 0; q < spec.num_queries; ++q) {
        if (q % phase_len == 0) {
          region_lo = static_cast<std::int64_t>(rng.NextBounded(
              static_cast<std::uint64_t>(
                  std::max<std::int64_t>(1, spec.domain - region_width))));
        }
        const std::int64_t span = std::max<std::int64_t>(1, region_width - width + 1);
        const auto lo =
            region_lo + static_cast<std::int64_t>(
                            rng.NextBounded(static_cast<std::uint64_t>(span)));
        out.push_back(MakeRange(lo, width, spec.domain));
      }
      break;
    }
  }
  return out;
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kQuery:
      return "query";
    case OpKind::kInsert:
      return "insert";
    case OpKind::kDelete:
      return "delete";
  }
  return "?";
}

std::vector<WorkloadOp> GenerateMixedWorkload(const MixedWorkloadSpec& spec) {
  AIDX_CHECK(spec.insert_fraction >= 0 && spec.delete_fraction >= 0 &&
             spec.insert_fraction + spec.delete_fraction <= 1.0)
      << "write fractions must be non-negative and sum to at most 1";
  const std::vector<RangePredicate<std::int64_t>> queries = GenerateQueries(spec.read);
  Rng rng(spec.seed);
  std::vector<WorkloadOp> out;
  out.reserve(queries.size());
  std::vector<std::int64_t> inserted;  // values deletes can re-target
  std::size_t next_query = 0;
  const auto domain = static_cast<std::uint64_t>(spec.read.domain);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double dice =
        static_cast<double>(rng.NextBounded(1u << 20)) / static_cast<double>(1u << 20);
    WorkloadOp op;
    if (dice < spec.insert_fraction) {
      op.kind = OpKind::kInsert;
      op.value = static_cast<std::int64_t>(rng.NextBounded(domain));
      inserted.push_back(op.value);
    } else if (dice < spec.insert_fraction + spec.delete_fraction) {
      op.kind = OpKind::kDelete;
      if (!inserted.empty() && rng.NextBounded(2) == 0) {
        const std::size_t pick = rng.NextBounded(inserted.size());
        op.value = inserted[pick];
        inserted[pick] = inserted.back();
        inserted.pop_back();
      } else {
        op.value = static_cast<std::int64_t>(rng.NextBounded(domain));
      }
    } else {
      op.kind = OpKind::kQuery;
      op.pred = queries[next_query++];
    }
    out.push_back(op);
  }
  return out;
}

}  // namespace aidx
