// Synthetic base-column generators for the experiments.
//
// The surveyed papers evaluate on columns of (pseudo)random integers; the
// distributions here cover the cases that stress different aspects of the
// algorithms: duplicates (small domains), pre-existing order (nearly
// sorted), and value skew.
#pragma once

#include <cstdint>
#include <vector>

namespace aidx {

enum class DataDistribution : char {
  kUniform,       // uniform over [0, domain)
  kPermutation,   // random permutation of 0..n-1 (all-distinct, domain = n)
  kNearlySorted,  // sorted 0..n-1 with a fraction of random swaps
  kZipfValues,    // value frequencies follow a zipf law (heavy duplicates)
};

const char* DataDistributionName(DataDistribution dist);

struct DataSpec {
  std::size_t n = 1 << 22;
  std::int64_t domain = 1 << 22;      // ignored by kPermutation / kNearlySorted
  DataDistribution distribution = DataDistribution::kUniform;
  double disorder = 0.05;             // kNearlySorted: fraction of swapped pairs
  double zipf_theta = 1.0;            // kZipfValues
  std::uint64_t seed = 7;
};

/// Generates a base column per the spec. Deterministic in the seed.
std::vector<std::int64_t> GenerateData(const DataSpec& spec);

}  // namespace aidx
