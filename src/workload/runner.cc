#include "workload/runner.h"

#include <numeric>

#include "util/logging.h"
#include "util/timer.h"

namespace aidx {

double RunResult::total_seconds() const {
  return std::accumulate(per_query_seconds.begin(), per_query_seconds.end(), 0.0);
}

double RunResult::first_query_seconds() const {
  return per_query_seconds.empty() ? 0.0 : per_query_seconds.front();
}

double RunResult::cumulative_average(std::size_t i) const {
  AIDX_CHECK(i < per_query_seconds.size());
  const double sum =
      std::accumulate(per_query_seconds.begin(),
                      per_query_seconds.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      0.0);
  return sum / static_cast<double>(i + 1);
}

double RunResult::tail_mean(std::size_t window) const {
  if (per_query_seconds.empty()) return 0.0;
  const std::size_t w = std::min(window, per_query_seconds.size());
  const double sum = std::accumulate(per_query_seconds.end() - static_cast<std::ptrdiff_t>(w),
                                     per_query_seconds.end(), 0.0);
  return sum / static_cast<double>(w);
}

RunResult RunWorkload(
    const std::function<std::unique_ptr<AccessPath<std::int64_t>>()>& factory,
    std::span<const RangePredicate<std::int64_t>> queries, std::string strategy_name,
    std::string workload_name) {
  RunResult result;
  result.strategy = std::move(strategy_name);
  result.workload = std::move(workload_name);
  result.per_query_seconds.reserve(queries.size());
  std::unique_ptr<AccessPath<std::int64_t>> path;
  for (const auto& pred : queries) {
    WallTimer timer;
    if (path == nullptr) path = factory();  // init charged to first query
    const std::size_t count = path->Count(pred);
    result.per_query_seconds.push_back(timer.ElapsedSeconds());
    result.count_checksum += count;
  }
  return result;
}

RunResult RunWorkload(std::span<const std::int64_t> base, const StrategyConfig& config,
                      std::span<const RangePredicate<std::int64_t>> queries,
                      std::string workload_name) {
  return RunWorkload(
      [base, config]() { return MakeAccessPath<std::int64_t>(base, config); }, queries,
      config.DisplayName(), std::move(workload_name));
}

RunResult RunMixedWorkload(
    const std::function<std::unique_ptr<AccessPath<std::int64_t>>()>& factory,
    std::span<const WorkloadOp> ops, std::string strategy_name,
    std::string workload_name) {
  RunResult result;
  result.strategy = std::move(strategy_name);
  result.workload = std::move(workload_name);
  result.per_query_seconds.reserve(ops.size());
  std::unique_ptr<AccessPath<std::int64_t>> path;
  for (const WorkloadOp& op : ops) {
    WallTimer timer;
    if (path == nullptr) path = factory();  // init charged to first op
    switch (op.kind) {
      case OpKind::kQuery:
        result.count_checksum += path->Count(op.pred);
        break;
      case OpKind::kInsert:
        path->Insert(op.value);
        break;
      case OpKind::kDelete:
        result.deletes_applied += path->Delete(op.value) ? 1 : 0;
        break;
    }
    result.per_query_seconds.push_back(timer.ElapsedSeconds());
  }
  return result;
}

RunResult RunMixedWorkload(std::span<const std::int64_t> base,
                           const StrategyConfig& config,
                           std::span<const WorkloadOp> ops,
                           std::string workload_name) {
  return RunMixedWorkload(
      [base, config]() { return MakeAccessPath<std::int64_t>(base, config); }, ops,
      config.DisplayName(), std::move(workload_name));
}

}  // namespace aidx
