// Query-sequence generators: the workload patterns of the adaptive-indexing
// benchmark (Graefe, Idreos, Kuno, Manegold — TPCTC 2010).
//
// Each pattern stresses a different adaptation property:
//   kRandom     — the canonical pattern; uniform range positions;
//   kSkewed     — zipf-distributed hot regions (adaptive indexing should
//                 optimize hot ranges first);
//   kSequential — ranges march across the domain (worst case for plain
//                 cracking: every query re-cracks the huge untouched tail);
//   kPeriodic   — round-robin over k regions (recurring patterns);
//   kZoomIn     — successively narrowing ranges around a focus point;
//   kZoomOut    — successively widening ranges from a focus point;
//   kShiftingHotspot — a hot region that relocates mid-workload (tests
//                 re-adaptation after workload change).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/predicate.h"

namespace aidx {

enum class QueryPattern : char {
  kRandom,
  kSkewed,
  kSequential,
  kPeriodic,
  kZoomIn,
  kZoomOut,
  kShiftingHotspot,
};

const char* QueryPatternName(QueryPattern pattern);

/// All TPCTC-style patterns, for sweeps.
inline constexpr QueryPattern kAllQueryPatterns[] = {
    QueryPattern::kRandom,    QueryPattern::kSkewed,
    QueryPattern::kSequential, QueryPattern::kPeriodic,
    QueryPattern::kZoomIn,    QueryPattern::kZoomOut,
    QueryPattern::kShiftingHotspot,
};

struct WorkloadSpec {
  QueryPattern pattern = QueryPattern::kRandom;
  std::size_t num_queries = 10000;
  /// Key domain the ranges live in: predicates select within [0, domain).
  std::int64_t domain = 1 << 22;
  /// Fraction of the domain each range spans (0 < selectivity <= 1).
  double selectivity = 0.001;
  // Pattern-specific knobs.
  double zipf_theta = 1.0;        // kSkewed
  std::size_t num_hotspots = 100; // kSkewed: distinct hot range positions
  std::size_t period = 10;        // kPeriodic: number of regions
  std::size_t hotspot_phases = 4; // kShiftingHotspot: relocations
  double hotspot_width = 0.1;     // kShiftingHotspot: region width fraction
  std::uint64_t seed = 13;
};

/// Generates the predicate sequence for the spec. Deterministic in the seed.
std::vector<RangePredicate<std::int64_t>> GenerateQueries(const WorkloadSpec& spec);

/// One step of a mixed read/write workload.
enum class OpKind : char {
  kQuery,
  kInsert,
  kDelete,
};

const char* OpKindName(OpKind kind);

struct WorkloadOp {
  OpKind kind = OpKind::kQuery;
  RangePredicate<std::int64_t> pred{};  // kQuery
  std::int64_t value = 0;               // kInsert / kDelete
};

/// A read workload (any TPCTC pattern) interleaved with writes. Reads are
/// generated from `read`; each op slot then becomes an insert or delete
/// with the given probabilities. `read.num_queries` is the *total* op
/// count. Deletes target a previously inserted value half the time (so a
/// realistic share actually hits) and a uniform domain value otherwise.
struct MixedWorkloadSpec {
  WorkloadSpec read{};
  double insert_fraction = 0.1;
  double delete_fraction = 0.05;
  std::uint64_t seed = 17;  // interleaving + write-value randomness
};

/// Generates the op sequence for the spec. Deterministic in the seeds, so
/// every strategy replays the identical interleaving.
std::vector<WorkloadOp> GenerateMixedWorkload(const MixedWorkloadSpec& spec);

}  // namespace aidx
