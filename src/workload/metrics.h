// The adaptive-indexing benchmark metrics (Graefe, Idreos, Kuno, Manegold —
// TPCTC 2010, "Benchmarking Adaptive Indexing").
//
// Two headline measures characterize a technique:
//   1. the initialization overhead the *first* query pays, relative to the
//      plain scan that an unindexed system would have run anyway, and
//   2. how many queries must be processed before a random query runs at
//      full-index speed (convergence).
#pragma once

#include <cstddef>
#include <string>

#include "workload/runner.h"

namespace aidx {

struct BenchmarkMetrics {
  std::string strategy;
  std::string workload;
  double first_query_seconds = 0.0;
  /// first_query_seconds / scan_seconds — ~1 for cracking, large for
  /// sort-first strategies, exactly 1 for the scan itself.
  double first_query_overhead = 0.0;
  /// First query index (0-based) from which queries run within
  /// `convergence_factor` of the converged reference; -1 if never reached.
  std::ptrdiff_t queries_to_convergence = -1;
  double total_seconds = 0.0;
  /// Steady-state per-query cost (mean of the last tail window).
  double steady_state_seconds = 0.0;
};

struct MetricsOptions {
  /// A query "runs at index speed" when its smoothed cost is at most
  /// factor × reference_seconds.
  double convergence_factor = 2.0;
  /// Median window used for smoothing (odd).
  std::size_t smoothing_window = 11;
  /// Tail window for the steady-state estimate.
  std::size_t tail_window = 100;
};

/// Computes the TPCTC metrics for one run.
///
/// `scan_seconds` is the per-query cost of a full scan on the same data
/// (the overhead denominator); `reference_seconds` is the converged
/// per-query cost (e.g. the full-sort index's steady state).
BenchmarkMetrics ComputeMetrics(const RunResult& run, double scan_seconds,
                                double reference_seconds,
                                const MetricsOptions& options = {});

}  // namespace aidx
