// Report writers: aligned ASCII tables on stdout (the "figure" the bench
// binaries print) and CSV files for re-plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/runner.h"

namespace aidx {

/// Column-aligned ASCII table builder.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Renders with a header rule and right-aligned numeric-looking cells.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.23ms" / "45.6us" / "7.8s" — human-readable seconds.
std::string FormatSeconds(double seconds);

/// Writes rows as CSV; the header row first. Returns an error if the file
/// cannot be opened.
Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Log-spaced query indices (1, 2, 4, ..., n-1) used to down-sample
/// per-query series for printing.
std::vector<std::size_t> LogSpacedIndices(std::size_t n);

/// Prints per-query response-time series of several runs side by side at
/// log-spaced indices, then writes the full series to `csv_path` (pass ""
/// to skip the CSV).
void PrintSeriesComparison(std::ostream& os, const std::vector<RunResult>& runs,
                           const std::string& csv_path);

}  // namespace aidx
