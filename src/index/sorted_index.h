// FullSortIndex: the "build the full index up front" baseline.
//
// Models offline indexing: the first access pays a complete sort (the
// a-priori index build); every later query is two binary searches. This is
// the convergence target adaptive indexing is measured against.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"

namespace aidx {

/// Fully sorted copy of a column (optionally carrying row ids), answering
/// range predicates with binary search.
template <ColumnValue T>
class FullSortIndex {
 public:
  struct Options {
    /// Keep the base row id of every value so results can project other
    /// columns. Costs one row_id_t per value and a pair-sort at build.
    bool with_row_ids = false;
  };

  FullSortIndex(std::span<const T> base, Options options = {}) {
    values_.assign(base.begin(), base.end());
    if (options.with_row_ids) {
      row_ids_.resize(base.size());
      std::iota(row_ids_.begin(), row_ids_.end(), row_id_t{0});
      // Argsort, then apply the permutation to both arrays.
      std::vector<row_id_t> perm = row_ids_;
      std::sort(perm.begin(), perm.end(),
                [&](row_id_t a, row_id_t b) { return base[a] < base[b]; });
      std::vector<T> sorted_values(base.size());
      for (std::size_t i = 0; i < perm.size(); ++i) sorted_values[i] = base[perm[i]];
      values_ = std::move(sorted_values);
      row_ids_ = std::move(perm);
    } else {
      std::sort(values_.begin(), values_.end());
    }
  }

  /// Positions (into the *sorted* array) matching the predicate; always one
  /// contiguous range because the data is fully ordered.
  PositionRange SelectRange(const RangePredicate<T>& pred) const {
    std::size_t lo = 0;
    std::size_t hi = values_.size();
    switch (pred.low_kind) {
      case BoundKind::kInclusive:
        lo = LowerBound(pred.low);
        break;
      case BoundKind::kExclusive:
        lo = UpperBound(pred.low);
        break;
      case BoundKind::kUnbounded:
        break;
    }
    switch (pred.high_kind) {
      case BoundKind::kInclusive:
        hi = UpperBound(pred.high);
        break;
      case BoundKind::kExclusive:
        hi = LowerBound(pred.high);
        break;
      case BoundKind::kUnbounded:
        break;
    }
    if (hi < lo) hi = lo;
    return {lo, hi};
  }

  /// Folds an ascending-sorted batch into the index (one inplace_merge
  /// pass) — the delta-merge step of the sorted write path. Only supported
  /// without row ids (fresh tuples have no base offset to carry).
  void MergeSortedDelta(std::span<const T> sorted_delta) {
    AIDX_CHECK(row_ids_.empty()) << "delta merge unsupported with row ids";
    AIDX_DCHECK(std::is_sorted(sorted_delta.begin(), sorted_delta.end()));
    const auto mid = static_cast<std::ptrdiff_t>(values_.size());
    values_.insert(values_.end(), sorted_delta.begin(), sorted_delta.end());
    std::inplace_merge(values_.begin(), values_.begin() + mid, values_.end());
  }

  /// Removes one occurrence of `v`; returns false when absent.
  bool EraseOne(T v) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), v);
    if (it == values_.end() || *it != v) return false;
    if (!row_ids_.empty()) {
      row_ids_.erase(row_ids_.begin() + (it - values_.begin()));
    }
    values_.erase(it);
    return true;
  }

  std::size_t CountRange(const RangePredicate<T>& pred) const {
    return SelectRange(pred).size();
  }

  long double SumRange(const RangePredicate<T>& pred) const {
    const PositionRange r = SelectRange(pred);
    long double sum = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) sum += values_[i];
    return sum;
  }

  std::span<const T> values() const { return values_; }
  /// Row ids aligned with values(); empty unless built with_row_ids.
  std::span<const row_id_t> row_ids() const { return row_ids_; }
  std::size_t size() const { return values_.size(); }

 private:
  std::size_t LowerBound(T v) const {
    return static_cast<std::size_t>(
        std::lower_bound(values_.begin(), values_.end(), v) - values_.begin());
  }
  std::size_t UpperBound(T v) const {
    return static_cast<std::size_t>(
        std::upper_bound(values_.begin(), values_.end(), v) - values_.begin());
  }

  std::vector<T> values_;
  std::vector<row_id_t> row_ids_;
};

}  // namespace aidx
