// The non-indexed access path: predicate scans over dense arrays.
//
// Serves three roles: (1) the "no index" baseline of every experiment,
// (2) the oracle the test suite compares every adaptive structure against,
// (3) the edge-piece filter used when cracking stops at a piece-size
// threshold.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "storage/predicate.h"
#include "storage/types.h"

namespace aidx {

/// Counts values matching the predicate. Single tight loop; the compiler
/// vectorizes the two-comparison body (bulk processing, column-store style).
template <ColumnValue T>
std::size_t ScanCount(std::span<const T> values, const RangePredicate<T>& pred) {
  std::size_t count = 0;
  for (const T v : values) count += pred.Matches(v) ? 1 : 0;
  return count;
}

/// Sums values matching the predicate (the aggregate the figures report).
template <ColumnValue T>
long double ScanSum(std::span<const T> values, const RangePredicate<T>& pred) {
  long double sum = 0;
  for (const T v : values) {
    if (pred.Matches(v)) sum += static_cast<long double>(v);
  }
  return sum;
}

/// Collects the positions of matching values.
template <ColumnValue T>
void ScanPositions(std::span<const T> values, const RangePredicate<T>& pred,
                   std::vector<std::size_t>* out) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (pred.Matches(values[i])) out->push_back(i);
  }
}

/// Collects matching values themselves (materializing select).
template <ColumnValue T>
void ScanValues(std::span<const T> values, const RangePredicate<T>& pred,
                std::vector<T>* out) {
  for (const T v : values) {
    if (pred.Matches(v)) out->push_back(v);
  }
}

}  // namespace aidx
