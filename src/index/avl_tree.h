// A self-balancing (AVL) ordered map.
//
// This is the structure the original cracking papers use for the cracker
// index: cut positions are keyed by (pivot value, cut kind) and looked up by
// floor/ceiling searches. It is implemented here from scratch — std::map
// would work, but the cracker index is the paper's central data structure,
// its rebalancing behaviour matters for the cost narrative, and owning the
// implementation lets tests assert the AVL invariants directly.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Ordered map with guaranteed O(log n) height (AVL balancing).
///
/// Keys are unique under the comparator. Not thread-safe.
template <typename K, typename V, typename Compare = std::less<K>>
class AvlTree {
 public:
  struct Node {
    K key;
    V value;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;

    Node(K k, V v) : key(std::move(k)), value(std::move(v)) {}
  };

  AvlTree() = default;
  explicit AvlTree(Compare cmp) : cmp_(std::move(cmp)) {}
  ~AvlTree() { Clear(); }

  AIDX_DISALLOW_COPY_AND_ASSIGN(AvlTree);
  AvlTree(AvlTree&& other) noexcept
      : root_(std::exchange(other.root_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cmp_(other.cmp_) {}
  AvlTree& operator=(AvlTree&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = std::exchange(other.root_, nullptr);
      size_ = std::exchange(other.size_, 0);
      cmp_ = other.cmp_;
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return Height(root_); }

  /// Root node for callers that run custom descents (e.g. the cracker
  /// index's monotone-predicate search); nullptr when empty.
  const Node* Root() const { return root_; }

  void Clear() {
    DeleteSubtree(root_);
    root_ = nullptr;
    size_ = 0;
  }

  /// Inserts (key, value); if the key exists, leaves the map unchanged and
  /// returns the existing node. The bool is true when insertion happened.
  std::pair<Node*, bool> Insert(K key, V value) {
    Node* found = nullptr;
    bool inserted = false;
    root_ = InsertRec(root_, std::move(key), std::move(value), &found, &inserted);
    if (inserted) ++size_;
    return {found, inserted};
  }

  /// Exact lookup; nullptr when absent.
  Node* Find(const K& key) const {
    Node* n = root_;
    while (n != nullptr) {
      if (cmp_(key, n->key)) {
        n = n->left;
      } else if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        return n;
      }
    }
    return nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Greatest node with key <= `key` (floor); nullptr when all keys are greater.
  Node* FindFloor(const K& key) const {
    Node* n = root_;
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(key, n->key)) {
        n = n->left;
      } else {
        best = n;  // n->key <= key
        n = n->right;
      }
    }
    return best;
  }

  /// Smallest node with key >= `key` (ceiling); nullptr when all keys are smaller.
  Node* FindCeiling(const K& key) const {
    Node* n = root_;
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        best = n;  // n->key >= key
        n = n->left;
      }
    }
    return best;
  }

  /// Greatest node with key strictly < `key`.
  Node* FindBelow(const K& key) const {
    Node* n = root_;
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(n->key, key)) {
        best = n;
        n = n->right;
      } else {
        n = n->left;
      }
    }
    return best;
  }

  /// Smallest node with key strictly > `key`.
  Node* FindAbove(const K& key) const {
    Node* n = root_;
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(key, n->key)) {
        best = n;
        n = n->left;
      } else {
        n = n->right;
      }
    }
    return best;
  }

  Node* Min() const {
    Node* n = root_;
    while (n != nullptr && n->left != nullptr) n = n->left;
    return n;
  }
  Node* Max() const {
    Node* n = root_;
    while (n != nullptr && n->right != nullptr) n = n->right;
    return n;
  }

  /// Removes `key`; returns false when absent.
  bool Erase(const K& key) {
    bool erased = false;
    root_ = EraseRec(root_, key, &erased);
    if (erased) --size_;
    return erased;
  }

  /// In-order traversal over all nodes. `fn` receives Node&; mutation of
  /// values is allowed, keys must not change.
  template <typename Fn>
  void VisitInOrder(Fn&& fn) const {
    VisitRec(root_, fn);
  }

  /// In-order traversal restricted to keys >= `from`.
  template <typename Fn>
  void VisitFrom(const K& from, Fn&& fn) const {
    VisitFromRec(root_, from, fn);
  }

  /// Validates the AVL invariants (ordering, height bookkeeping, balance).
  /// Intended for tests; O(n).
  bool Validate() const {
    bool ok = true;
    ValidateRec(root_, nullptr, nullptr, &ok);
    return ok;
  }

 private:
  static int Height(const Node* n) { return n == nullptr ? 0 : n->height; }
  static int BalanceOf(const Node* n) {
    return n == nullptr ? 0 : Height(n->left) - Height(n->right);
  }
  static void Update(Node* n) {
    n->height = 1 + std::max(Height(n->left), Height(n->right));
  }

  static Node* RotateRight(Node* y) {
    Node* x = y->left;
    y->left = x->right;
    x->right = y;
    Update(y);
    Update(x);
    return x;
  }
  static Node* RotateLeft(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    y->left = x;
    Update(x);
    Update(y);
    return y;
  }

  static Node* Rebalance(Node* n) {
    Update(n);
    const int balance = BalanceOf(n);
    if (balance > 1) {
      if (BalanceOf(n->left) < 0) n->left = RotateLeft(n->left);
      return RotateRight(n);
    }
    if (balance < -1) {
      if (BalanceOf(n->right) > 0) n->right = RotateRight(n->right);
      return RotateLeft(n);
    }
    return n;
  }

  Node* InsertRec(Node* n, K&& key, V&& value, Node** found, bool* inserted) {
    if (n == nullptr) {
      *found = new Node(std::move(key), std::move(value));
      *inserted = true;
      return *found;
    }
    if (cmp_(key, n->key)) {
      n->left = InsertRec(n->left, std::move(key), std::move(value), found, inserted);
    } else if (cmp_(n->key, key)) {
      n->right = InsertRec(n->right, std::move(key), std::move(value), found, inserted);
    } else {
      *found = n;
      *inserted = false;
      return n;
    }
    return Rebalance(n);
  }

  Node* EraseRec(Node* n, const K& key, bool* erased) {
    if (n == nullptr) return nullptr;
    if (cmp_(key, n->key)) {
      n->left = EraseRec(n->left, key, erased);
    } else if (cmp_(n->key, key)) {
      n->right = EraseRec(n->right, key, erased);
    } else {
      *erased = true;
      if (n->left == nullptr || n->right == nullptr) {
        Node* child = n->left != nullptr ? n->left : n->right;
        delete n;
        return child;  // child may be nullptr
      }
      // Two children: replace with in-order successor, then erase it below.
      Node* succ = n->right;
      while (succ->left != nullptr) succ = succ->left;
      n->key = succ->key;
      n->value = std::move(succ->value);
      bool dummy = false;
      n->right = EraseRec(n->right, succ->key, &dummy);
    }
    return Rebalance(n);
  }

  template <typename Fn>
  static void VisitRec(Node* n, Fn& fn) {
    if (n == nullptr) return;
    VisitRec(n->left, fn);
    fn(*n);
    VisitRec(n->right, fn);
  }

  template <typename Fn>
  void VisitFromRec(Node* n, const K& from, Fn& fn) const {
    if (n == nullptr) return;
    if (!cmp_(n->key, from)) {  // n->key >= from
      VisitFromRec(n->left, from, fn);
      fn(*n);
      VisitRec(n->right, fn);
    } else {
      VisitFromRec(n->right, from, fn);
    }
  }

  void ValidateRec(const Node* n, const K* lo, const K* hi, bool* ok) const {
    if (n == nullptr || !*ok) return;
    if (lo != nullptr && !cmp_(*lo, n->key)) *ok = false;
    if (hi != nullptr && !cmp_(n->key, *hi)) *ok = false;
    const int expect = 1 + std::max(Height(n->left), Height(n->right));
    if (n->height != expect) *ok = false;
    if (BalanceOf(n) < -1 || BalanceOf(n) > 1) *ok = false;
    ValidateRec(n->left, lo, &n->key, ok);
    ValidateRec(n->right, &n->key, hi, ok);
  }

  static void DeleteSubtree(Node* n) {
    if (n == nullptr) return;
    DeleteSubtree(n->left);
    DeleteSubtree(n->right);
    delete n;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Compare cmp_{};
};

}  // namespace aidx
