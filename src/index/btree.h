// In-memory B+ tree.
//
// Two roles in the reproduction:
//  * the "final partition" adaptive merging migrates key ranges into
//    (EDBT'10 uses a partitioned B-tree; merged ranges land here), and
//  * an alternative full-index baseline with realistic node structure.
//
// Duplicates are allowed. Leaves are singly linked for range scans.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// B+ tree over values of T with optional row-id payloads.
template <ColumnValue T>
class BPlusTree {
 public:
  struct Options {
    /// Max keys per leaf before it splits.
    std::size_t leaf_capacity = 256;
    /// Max children per internal node before it splits.
    std::size_t internal_fanout = 64;
    bool with_row_ids = false;
  };

  explicit BPlusTree(Options options = {}) : options_(options) {
    AIDX_CHECK(options_.leaf_capacity >= 2) << "leaf capacity must be >= 2";
    AIDX_CHECK(options_.internal_fanout >= 3) << "internal fanout must be >= 3";
  }
  ~BPlusTree() { FreeSubtree(root_); }

  AIDX_DISALLOW_COPY_AND_ASSIGN(BPlusTree);
  BPlusTree(BPlusTree&& other) noexcept { MoveFrom(std::move(other)); }
  BPlusTree& operator=(BPlusTree&& other) noexcept {
    if (this != &other) {
      FreeSubtree(root_);
      MoveFrom(std::move(other));
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return root_ == nullptr ? 0 : HeightOf(root_); }

  /// Number of leaves in the chain. O(#leaves); the delete-hygiene tests
  /// use it to assert compaction keeps density bounded.
  std::size_t LeafCount() const {
    if (root_ == nullptr) return 0;
    const Node* n = root_;
    while (!n->is_leaf) n = static_cast<const Internal*>(n)->children.front();
    std::size_t count = 0;
    for (const Leaf* leaf = static_cast<const Leaf*>(n); leaf != nullptr;
         leaf = leaf->next) {
      ++count;
    }
    return count;
  }

  /// Inserts a single key (duplicate keys permitted).
  void Insert(T key, row_id_t rid = 0) {
    if (root_ == nullptr) {
      auto* leaf = new Leaf();
      root_ = leaf;
    }
    SplitInfo split;
    InsertRec(root_, key, rid, &split);
    if (split.created != nullptr) {
      auto* new_root = new Internal();
      new_root->seps.push_back(split.separator);
      new_root->children.push_back(root_);
      new_root->children.push_back(split.created);
      root_ = new_root;
    }
    ++size_;
  }

  /// Inserts a batch whose keys are already sorted ascending. Amortizes the
  /// descent; used by adaptive merging to migrate extracted runs.
  void InsertSortedBatch(std::span<const T> keys, std::span<const row_id_t> rids = {}) {
    AIDX_DCHECK(std::is_sorted(keys.begin(), keys.end()));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Insert(keys[i], rids.empty() ? row_id_t{0} : rids[i]);
    }
  }

  /// Removes one occurrence of `key`; returns false when the key is absent.
  /// A leaf drained below a quarter of its capacity is compacted with an
  /// adjacent sibling under the same parent (merged when the combined keys
  /// fit, rebalanced by borrowing otherwise), and thinned internal nodes
  /// merge with a sibling the same way (SplitInternal in reverse), so
  /// sustained deletes cannot leave chains of near-empty nodes behind; a
  /// single-child root collapses from the top. The pass stays a single
  /// descent — compaction happens on the way back up.
  bool EraseOne(T key) {
    if (root_ == nullptr) return false;
    if (!EraseRec(root_, key)) return false;
    --size_;
    // Collapse a root chain: an internal root with a single child carries
    // no information.
    while (!root_->is_leaf) {
      auto* in = static_cast<Internal*>(root_);
      if (in->children.size() > 1) break;
      root_ = in->children.front();
      in->children.clear();
      delete in;
    }
    return true;
  }

  /// Replaces the content with a bulk-loaded tree from sorted input; the
  /// classic offline build path (leaves first, then index levels).
  void BulkLoadSorted(std::span<const T> keys, std::span<const row_id_t> rids = {}) {
    AIDX_DCHECK(std::is_sorted(keys.begin(), keys.end()));
    AIDX_CHECK(rids.empty() || rids.size() == keys.size());
    FreeSubtree(root_);
    root_ = nullptr;
    size_ = keys.size();
    if (keys.empty()) return;

    // Build leaves at ~90% fill (standard bulk-load practice).
    const std::size_t fill =
        std::max<std::size_t>(1, options_.leaf_capacity * 9 / 10);
    std::vector<Node*> level;
    std::vector<T> level_min_keys;
    Leaf* prev = nullptr;
    for (std::size_t at = 0; at < keys.size(); at += fill) {
      const std::size_t n = std::min(fill, keys.size() - at);
      auto* leaf = new Leaf();
      leaf->keys.assign(keys.begin() + at, keys.begin() + at + n);
      if (!rids.empty()) leaf->rids.assign(rids.begin() + at, rids.begin() + at + n);
      if (prev != nullptr) prev->next = leaf;
      prev = leaf;
      level.push_back(leaf);
      level_min_keys.push_back(leaf->keys.front());
    }
    // Build internal levels until a single root remains.
    const std::size_t fanout_fill =
        std::max<std::size_t>(2, options_.internal_fanout * 9 / 10);
    while (level.size() > 1) {
      std::vector<Node*> parents;
      std::vector<T> parent_min_keys;
      for (std::size_t at = 0; at < level.size(); at += fanout_fill) {
        const std::size_t n = std::min(fanout_fill, level.size() - at);
        auto* node = new Internal();
        node->children.assign(level.begin() + at, level.begin() + at + n);
        for (std::size_t j = 1; j < n; ++j) {
          node->seps.push_back(level_min_keys[at + j]);
        }
        parents.push_back(node);
        parent_min_keys.push_back(level_min_keys[at]);
      }
      level = std::move(parents);
      level_min_keys = std::move(parent_min_keys);
    }
    root_ = level.front();
  }

  std::size_t CountRange(const RangePredicate<T>& pred) const {
    std::size_t count = 0;
    VisitRange(pred, [&](T, row_id_t) { ++count; });
    return count;
  }

  long double SumRange(const RangePredicate<T>& pred) const {
    long double sum = 0;
    VisitRange(pred, [&](T v, row_id_t) { sum += static_cast<long double>(v); });
    return sum;
  }

  /// Visits (key, rid) pairs matching `pred` in ascending key order.
  template <typename Fn>
  void VisitRange(const RangePredicate<T>& pred, Fn&& fn) const {
    if (root_ == nullptr) return;
    // Descend to the first candidate leaf.
    const Leaf* leaf = nullptr;
    std::size_t at = 0;
    if (pred.low_kind == BoundKind::kUnbounded) {
      const Node* n = root_;
      while (!n->is_leaf) n = static_cast<const Internal*>(n)->children.front();
      leaf = static_cast<const Leaf*>(n);
    } else {
      const Node* n = root_;
      while (!n->is_leaf) {
        const auto* in = static_cast<const Internal*>(n);
        // Child i holds keys in [seps[i-1], seps[i]); go right of all
        // separators <= low so duplicates of low to the left are skipped
        // only when allowed. Using upper_bound keeps duplicates reachable
        // because separators equal to low force the left-most such child...
        const auto it = std::upper_bound(in->seps.begin(), in->seps.end(), pred.low);
        std::size_t child = static_cast<std::size_t>(it - in->seps.begin());
        // Duplicates equal to `low` may extend into the previous child; the
        // separator is a copy of some leaf's min key, so step back while the
        // previous separator equals low.
        while (child > 0 && in->seps[child - 1] == pred.low) --child;
        n = in->children[child];
      }
      leaf = static_cast<const Leaf*>(n);
      at = static_cast<std::size_t>(
          std::lower_bound(leaf->keys.begin(), leaf->keys.end(), pred.low) -
          leaf->keys.begin());
      if (pred.low_kind == BoundKind::kExclusive) {
        while (true) {
          if (at == leaf->keys.size()) {
            leaf = leaf->next;
            if (leaf == nullptr) return;
            at = 0;
            continue;
          }
          if (leaf->keys[at] != pred.low) break;
          ++at;
        }
      }
    }
    // Sweep leaves until the high bound stops us.
    while (leaf != nullptr) {
      for (; at < leaf->keys.size(); ++at) {
        const T k = leaf->keys[at];
        if (pred.high_kind == BoundKind::kInclusive && k > pred.high) return;
        if (pred.high_kind == BoundKind::kExclusive && k >= pred.high) return;
        fn(k, leaf->rids.empty() ? row_id_t{0} : leaf->rids[at]);
      }
      leaf = leaf->next;
      at = 0;
    }
  }

  /// Checks structural invariants: ordering inside nodes, separator
  /// consistency, uniform leaf depth, correct leaf chaining, size. O(n).
  bool Validate() const {
    if (root_ == nullptr) return size_ == 0;
    bool ok = true;
    int leaf_depth = -1;
    const Leaf* prev_leaf = nullptr;
    std::size_t counted = 0;
    ValidateRec(root_, 0, nullptr, nullptr, &leaf_depth, &prev_leaf, &counted, &ok);
    if (counted != size_) ok = false;
    if (prev_leaf != nullptr && prev_leaf->next != nullptr) ok = false;
    return ok;
  }

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };
  struct Leaf : Node {
    std::vector<T> keys;
    std::vector<row_id_t> rids;
    Leaf* next = nullptr;
    Leaf() : Node(true) {}
  };
  struct Internal : Node {
    std::vector<T> seps;        // seps.size() == children.size() - 1
    std::vector<Node*> children;
    Internal() : Node(false) {}
  };

  struct SplitInfo {
    Node* created = nullptr;
    T separator{};
  };

  void InsertRec(Node* n, T key, row_id_t rid, SplitInfo* split) {
    if (n->is_leaf) {
      auto* leaf = static_cast<Leaf*>(n);
      const auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key);
      const std::size_t pos = static_cast<std::size_t>(it - leaf->keys.begin());
      leaf->keys.insert(it, key);
      if (options_.with_row_ids) {
        leaf->rids.insert(leaf->rids.begin() + static_cast<std::ptrdiff_t>(pos), rid);
      }
      if (leaf->keys.size() > options_.leaf_capacity) SplitLeaf(leaf, split);
      return;
    }
    auto* in = static_cast<Internal*>(n);
    const auto it = std::upper_bound(in->seps.begin(), in->seps.end(), key);
    const std::size_t child = static_cast<std::size_t>(it - in->seps.begin());
    SplitInfo child_split;
    InsertRec(in->children[child], key, rid, &child_split);
    if (child_split.created != nullptr) {
      in->seps.insert(in->seps.begin() + static_cast<std::ptrdiff_t>(child),
                      child_split.separator);
      in->children.insert(
          in->children.begin() + static_cast<std::ptrdiff_t>(child) + 1,
          child_split.created);
      if (in->children.size() > options_.internal_fanout) SplitInternal(in, split);
    }
  }

  /// Recursive erase. At each internal node the key can only live under
  /// the contiguous child range [first, last] (duplicates equal to a
  /// separator may extend into the child left of it, same rule as
  /// VisitRange); children are tried left to right. After a child's
  /// subtree erased the key, the touched leaf (when it is a direct child)
  /// is compacted if it underflowed.
  bool EraseRec(Node* n, T key) {
    if (n->is_leaf) {
      auto* leaf = static_cast<Leaf*>(n);
      const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      if (it == leaf->keys.end() || *it != key) return false;
      const std::size_t at = static_cast<std::size_t>(it - leaf->keys.begin());
      leaf->keys.erase(it);
      if (!leaf->rids.empty()) {
        leaf->rids.erase(leaf->rids.begin() + static_cast<std::ptrdiff_t>(at));
      }
      return true;
    }
    auto* in = static_cast<Internal*>(n);
    const auto it = std::upper_bound(in->seps.begin(), in->seps.end(), key);
    const std::size_t last = static_cast<std::size_t>(it - in->seps.begin());
    std::size_t first = last;
    while (first > 0 && in->seps[first - 1] == key) --first;
    for (std::size_t c = first; c <= last; ++c) {
      if (!EraseRec(in->children[c], key)) continue;
      if (in->children[c]->is_leaf) {
        CompactLeafChild(in, c);
      } else {
        CompactInternalChild(in, c);
      }
      return true;
    }
    return false;
  }

  /// Leaves drained below this many keys are compacted with a sibling.
  std::size_t LeafMinFill() const {
    return std::max<std::size_t>(1, options_.leaf_capacity / 4);
  }

  /// Restores fill for the (possibly underflowed) leaf at `in->children[c]`
  /// using an adjacent sibling under the same parent: merge when the
  /// combined keys fit in one leaf, borrow to the threshold otherwise.
  /// Adjacent same-parent siblings are adjacent in the leaf chain, so the
  /// chain is patched locally; separators are updated to the recipient's
  /// new minimum, preserving every bound invariant Validate() checks.
  void CompactLeafChild(Internal* in, std::size_t c) {
    auto* leaf = static_cast<Leaf*>(in->children[c]);
    if (leaf->keys.size() >= LeafMinFill() || in->children.size() < 2) return;
    // Prefer the right sibling; fall back to the left at the last slot.
    const std::size_t left_idx = c + 1 < in->children.size() ? c : c - 1;
    auto* left = static_cast<Leaf*>(in->children[left_idx]);
    auto* right = static_cast<Leaf*>(in->children[left_idx + 1]);
    const bool with_rids = !left->rids.empty() || !right->rids.empty();
    if (left->keys.size() + right->keys.size() <= options_.leaf_capacity) {
      // Merge `right` into `left`, drop the separator between them.
      left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
      if (with_rids) {
        left->rids.insert(left->rids.end(), right->rids.begin(), right->rids.end());
      }
      left->next = right->next;
      delete right;
      in->children.erase(in->children.begin() +
                         static_cast<std::ptrdiff_t>(left_idx) + 1);
      in->seps.erase(in->seps.begin() + static_cast<std::ptrdiff_t>(left_idx));
      return;
    }
    // No room to merge: borrow keys across the separator until the drained
    // leaf reaches the threshold (the donor is above capacity/2, so it
    // stays comfortably filled).
    if (leaf == left) {
      while (left->keys.size() < LeafMinFill()) {
        left->keys.push_back(right->keys.front());
        right->keys.erase(right->keys.begin());
        if (with_rids) {
          left->rids.push_back(right->rids.front());
          right->rids.erase(right->rids.begin());
        }
      }
    } else {
      while (right->keys.size() < LeafMinFill()) {
        right->keys.insert(right->keys.begin(), left->keys.back());
        left->keys.pop_back();
        if (with_rids) {
          right->rids.insert(right->rids.begin(), left->rids.back());
          left->rids.pop_back();
        }
      }
    }
    in->seps[left_idx] = right->keys.front();
  }

  /// Restores fill for a thinned internal child using an adjacent sibling:
  /// merge when the combined children fit (SplitInternal in reverse — the
  /// parent's separator between them drops down between the concatenated
  /// separator lists), borrow children across the separator otherwise
  /// (rotate: the parent separator drops into the recipient, the donor's
  /// edge separator moves up). Either way every non-root internal the
  /// delete path touches keeps >= min-children, so skewed delete streams
  /// cannot strand a lone leaf under a one-child internal where leaf
  /// compaction (which needs a same-parent sibling) could never reach it.
  /// Bound invariants and uniform leaf depth are preserved throughout.
  void CompactInternalChild(Internal* in, std::size_t c) {
    const std::size_t min_children =
        std::max<std::size_t>(2, options_.internal_fanout / 4);
    auto* child = static_cast<Internal*>(in->children[c]);
    if (child->children.size() >= min_children || in->children.size() < 2) return;
    const std::size_t left_idx = c + 1 < in->children.size() ? c : c - 1;
    auto* left = static_cast<Internal*>(in->children[left_idx]);
    auto* right = static_cast<Internal*>(in->children[left_idx + 1]);
    if (left->children.size() + right->children.size() <=
        options_.internal_fanout) {
      left->seps.push_back(in->seps[left_idx]);
      left->seps.insert(left->seps.end(), right->seps.begin(), right->seps.end());
      left->children.insert(left->children.end(), right->children.begin(),
                            right->children.end());
      right->children.clear();
      delete right;
      in->children.erase(in->children.begin() +
                         static_cast<std::ptrdiff_t>(left_idx) + 1);
      in->seps.erase(in->seps.begin() + static_cast<std::ptrdiff_t>(left_idx));
      return;
    }
    // No room to merge: combined > fanout, so the donor holds > fanout -
    // min_children children and stays comfortably filled after lending.
    if (child == left) {
      while (left->children.size() < min_children) {
        left->children.push_back(right->children.front());
        right->children.erase(right->children.begin());
        left->seps.push_back(in->seps[left_idx]);
        in->seps[left_idx] = right->seps.front();
        right->seps.erase(right->seps.begin());
      }
    } else {
      while (right->children.size() < min_children) {
        right->children.insert(right->children.begin(), left->children.back());
        left->children.pop_back();
        right->seps.insert(right->seps.begin(), in->seps[left_idx]);
        in->seps[left_idx] = left->seps.back();
        left->seps.pop_back();
      }
    }
  }

  void SplitLeaf(Leaf* leaf, SplitInfo* split) {
    auto* right = new Leaf();
    const std::size_t half = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + half, leaf->keys.end());
    leaf->keys.resize(half);
    if (options_.with_row_ids) {
      right->rids.assign(leaf->rids.begin() + half, leaf->rids.end());
      leaf->rids.resize(half);
    }
    right->next = leaf->next;
    leaf->next = right;
    split->created = right;
    split->separator = right->keys.front();
  }

  void SplitInternal(Internal* node, SplitInfo* split) {
    auto* right = new Internal();
    const std::size_t mid = node->children.size() / 2;  // children to keep left
    split->separator = node->seps[mid - 1];
    right->seps.assign(node->seps.begin() + mid, node->seps.end());
    right->children.assign(node->children.begin() + mid, node->children.end());
    node->seps.resize(mid - 1);
    node->children.resize(mid);
    split->created = right;
  }

  static int HeightOf(const Node* n) {
    int h = 1;
    while (!n->is_leaf) {
      n = static_cast<const Internal*>(n)->children.front();
      ++h;
    }
    return h;
  }

  void ValidateRec(const Node* n, int depth, const T* lo, const T* hi,
                   int* leaf_depth, const Leaf** prev_leaf, std::size_t* counted,
                   bool* ok) const {
    if (!*ok) return;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const Leaf*>(n);
      if (*leaf_depth == -1) {
        *leaf_depth = depth;
      } else if (*leaf_depth != depth) {
        *ok = false;
        return;
      }
      if (!std::is_sorted(leaf->keys.begin(), leaf->keys.end())) *ok = false;
      if (options_.with_row_ids && leaf->rids.size() != leaf->keys.size()) *ok = false;
      for (const T k : leaf->keys) {
        if (lo != nullptr && k < *lo) *ok = false;
        if (hi != nullptr && k > *hi) *ok = false;
      }
      if (*prev_leaf != nullptr && (*prev_leaf)->next != leaf) *ok = false;
      *prev_leaf = leaf;
      *counted += leaf->keys.size();
      return;
    }
    const auto* in = static_cast<const Internal*>(n);
    if (in->children.size() != in->seps.size() + 1 || in->children.empty()) {
      *ok = false;
      return;
    }
    if (!std::is_sorted(in->seps.begin(), in->seps.end())) *ok = false;
    for (std::size_t i = 0; i < in->children.size(); ++i) {
      const T* child_lo = i == 0 ? lo : &in->seps[i - 1];
      const T* child_hi = i == in->seps.size() ? hi : &in->seps[i];
      ValidateRec(in->children[i], depth + 1, child_lo, child_hi, leaf_depth,
                  prev_leaf, counted, ok);
    }
  }

  static void FreeSubtree(Node* n) {
    if (n == nullptr) return;
    if (!n->is_leaf) {
      for (Node* c : static_cast<Internal*>(n)->children) FreeSubtree(c);
      delete static_cast<Internal*>(n);
    } else {
      delete static_cast<Leaf*>(n);
    }
  }

  void MoveFrom(BPlusTree&& other) {
    root_ = std::exchange(other.root_, nullptr);
    size_ = std::exchange(other.size_, 0);
    options_ = other.options_;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Options options_;
};

}  // namespace aidx
