// Cracker maps: the unit of sideways cracking (SIGMOD 2009,
// "Self-organizing Tuple Reconstruction in Column-Stores").
//
// A map M_{A,B} holds (head, tail) pairs — selection attribute A and
// projected attribute B — physically reorganized *together* by cracks on A.
// After a select on A the qualifying tuples' B values are one contiguous
// slice: tuple reconstruction becomes a sequential copy instead of the
// random-access gathers that late materialization pays per row.
//
// Maps of the same head stay *aligned* by replaying a shared crack tape
// (see sideways.h); CrackerMap itself is the single-map mechanism.
#pragma once

#include <span>
#include <vector>

#include "core/crack_ops.h"
#include "core/cracker_index.h"
#include "core/cut.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Adaptation counters for one cracker map.
struct CrackerMapStats {
  std::size_t num_selects = 0;
  std::size_t num_cracks = 0;
  std::size_t values_touched = 0;
};

template <ColumnValue T, ColumnValue TailT = T>
class CrackerMap {
 public:
  /// Materializes the map from base columns (both copied). Creation cost is
  /// part of the first query that needs this map — callers create lazily.
  /// `kernel` selects the partitioning loops (core/crack_ops.h); the tail
  /// rides as the tandem payload through every kernel.
  CrackerMap(std::span<const T> head, std::span<const TailT> tail,
             CrackKernel kernel = CrackKernel::kBranchy)
      : kernel_(kernel),
        head_(head.begin(), head.end()),
        tail_(tail.begin(), tail.end()),
        index_(head.size()) {
    AIDX_CHECK(head.size() == tail.size())
        << "head/tail length mismatch: " << head.size() << " vs " << tail.size();
  }

  AIDX_DEFAULT_MOVE_ONLY(CrackerMap);

  /// Cracks on the predicate's bounds and returns the contiguous position
  /// range of qualifying tuples. Deterministic: two maps with identical
  /// initial content that apply the same predicate sequence have identical
  /// layouts (the property alignment relies on).
  PositionRange Select(const RangePredicate<T>& pred) {
    ++stats_.num_selects;
    if (pred.DefinitelyEmpty()) return {0, 0};
    const PredicateCuts<T> cuts = CutsForPredicate(pred);
    std::size_t begin = 0;
    std::size_t end = head_.size();
    if (cuts.has_lower && cuts.has_upper) {
      const CutLookup<T> lo = index_.Lookup(cuts.lower);
      const CutLookup<T> hi = index_.Lookup(cuts.upper);
      if (!lo.exact && !hi.exact && lo.piece.begin == hi.piece.begin &&
          lo.piece.end == hi.piece.end && !(cuts.upper < cuts.lower) &&
          !(cuts.lower == cuts.upper)) {
        const auto& piece = lo.piece;
        const ThreeWaySplit split = CrackInThree<T, TailT>(
            HeadIn(piece.begin, piece.end), TailIn(piece.begin, piece.end),
            cuts.lower, cuts.upper, kernel_);
        ++stats_.num_cracks;
        stats_.values_touched += CrackInThreeValuesTouched(
            piece.end - piece.begin, split.lower_end, kernel_);
        index_.AddCut(cuts.lower, piece.begin + split.lower_end);
        index_.AddCut(cuts.upper, piece.begin + split.middle_end);
        return {piece.begin + split.lower_end, piece.begin + split.middle_end};
      }
    }
    if (cuts.has_lower) begin = ResolveCut(cuts.lower);
    if (cuts.has_upper) end = ResolveCut(cuts.upper);
    if (end < begin) end = begin;
    return {begin, end};
  }

  std::span<const T> head() const { return head_; }
  std::span<const TailT> tail() const { return tail_; }
  std::size_t size() const { return head_.size(); }
  const CrackerIndex<T>& index() const { return index_; }
  const CrackerMapStats& stats() const { return stats_; }

  /// Payload bytes this map pins (the unit of the storage budget).
  std::size_t MemoryUsageBytes() const {
    return head_.capacity() * sizeof(T) + tail_.capacity() * sizeof(TailT);
  }

  /// Piece invariants over the head column. O(n); tests only.
  bool Validate() const {
    if (!index_.Validate() || index_.column_size() != head_.size()) return false;
    bool ok = true;
    index_.VisitPieces([&](const PieceInfo<T>& piece) {
      for (std::size_t i = piece.begin; i < piece.end && ok; ++i) {
        if (piece.lower && piece.lower->Below(head_[i])) ok = false;
        if (piece.upper && !piece.upper->Below(head_[i])) ok = false;
      }
    });
    return ok;
  }

 private:
  std::span<T> HeadIn(std::size_t b, std::size_t e) {
    return std::span<T>(head_).subspan(b, e - b);
  }
  std::span<TailT> TailIn(std::size_t b, std::size_t e) {
    return std::span<TailT>(tail_).subspan(b, e - b);
  }

  std::size_t ResolveCut(const Cut<T>& cut) {
    const CutLookup<T> look = index_.Lookup(cut);
    if (look.exact) return look.position;
    const auto& piece = look.piece;
    const std::size_t split =
        piece.begin + CrackInTwo<T, TailT>(HeadIn(piece.begin, piece.end),
                                           TailIn(piece.begin, piece.end), cut,
                                           kernel_);
    ++stats_.num_cracks;
    stats_.values_touched += piece.end - piece.begin;
    index_.AddCut(cut, split);
    return split;
  }

  CrackKernel kernel_ = CrackKernel::kBranchy;
  std::vector<T> head_;
  std::vector<TailT> tail_;
  CrackerIndex<T> index_;
  CrackerMapStats stats_;
};

}  // namespace aidx
