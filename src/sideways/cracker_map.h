// Cracker maps: the unit of sideways cracking (SIGMOD 2009,
// "Self-organizing Tuple Reconstruction in Column-Stores").
//
// A map M_{A,B} holds (head, tail) pairs — selection attribute A and
// projected attribute B — physically reorganized *together* by cracks on A.
// After a select on A the qualifying tuples' B values are one contiguous
// slice: tuple reconstruction becomes a sequential copy instead of the
// random-access gathers that late materialization pays per row.
//
// Every pair additionally carries its row id. Rids are what make maps
// *updatable*: a delete addressed by rid picks the same physical victim in
// every map of a cohort (value-addressed victim search would not, once
// duplicate head values carry different tails), and an eviction-rebuilt map
// can regather tails from the base by rid. RippleInsert / RippleDelete are
// the SIGMOD 2007 ripple moves extended to tandem pairs: O(#pieces) element
// moves per tuple, cuts shifted in lock step.
//
// Maps of the same head stay *aligned* by replaying a shared operation log
// (see sideways.h); CrackerMap itself is the single-map mechanism.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/crack_ops.h"
#include "core/cracker_index.h"
#include "core/cut.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Adaptation counters for one cracker map.
struct CrackerMapStats {
  std::size_t num_selects = 0;
  std::size_t num_cracks = 0;
  std::size_t values_touched = 0;
  std::size_t inserts_applied = 0;
  std::size_t deletes_applied = 0;
  std::size_t ripple_element_moves = 0;
};

template <ColumnValue T, ColumnValue TailT = T>
class CrackerMap {
 public:
  /// What travels in tandem with each head value. The struct is the kernel
  /// payload, so head, tail, and rid reorganize in one pass.
  struct Entry {
    TailT tail;
    row_id_t rid;
  };

  /// Bytes one row pins in a map (the unit of the storage budget).
  static constexpr std::size_t kBytesPerRow = sizeof(T) + sizeof(Entry);

  /// Materializes the map from base columns (both copied), rids 0..n-1.
  /// Creation cost is part of the first query that needs this map — callers
  /// create lazily. `kernel` selects the partitioning loops
  /// (core/crack_ops.h); the entries ride as the tandem payload through
  /// every kernel.
  CrackerMap(std::span<const T> head, std::span<const TailT> tail,
             CrackKernel kernel = CrackKernel::kAuto,
             std::size_t predication_min_piece = 0)
      : CrackerMap(head, tail, std::span<const row_id_t>{}, kernel,
                   predication_min_piece) {}

  /// Materialization with explicit row ids (tables whose rid sequence has
  /// diverged from position under DML). Empty `rids` means identity.
  CrackerMap(std::span<const T> head, std::span<const TailT> tail,
             std::span<const row_id_t> rids,
             CrackKernel kernel = CrackKernel::kAuto,
             std::size_t predication_min_piece = 0)
      : kernel_(kernel),
        predication_min_piece_(predication_min_piece),
        head_(head.begin(), head.end()),
        index_(head.size()) {
    AIDX_CHECK(head.size() == tail.size())
        << "head/tail length mismatch: " << head.size() << " vs " << tail.size();
    AIDX_CHECK(rids.empty() || rids.size() == head.size())
        << "head/rid length mismatch: " << head.size() << " vs " << rids.size();
    entries_.reserve(head.size());
    for (std::size_t i = 0; i < head.size(); ++i) {
      entries_.push_back(
          {tail[i], rids.empty() ? static_cast<row_id_t>(i) : rids[i]});
    }
  }

  /// Clones `layout_source`'s physical layout — head order, rids, *and*
  /// realized cuts — substituting this map's tail values (given in layout
  /// order). This is how a map joins a cohort whose layout history includes
  /// updates: replaying from base cannot reproduce an interleaved
  /// crack/ripple history, but copying a fully-aligned sibling can.
  CrackerMap(const CrackerMap& layout_source, std::vector<TailT> tail)
      : kernel_(layout_source.kernel_),
        predication_min_piece_(layout_source.predication_min_piece_),
        head_(layout_source.head_),
        index_(layout_source.index_.Clone()) {
    AIDX_CHECK(tail.size() == head_.size())
        << "clone tail length mismatch: " << tail.size() << " vs " << head_.size();
    entries_.reserve(head_.size());
    for (std::size_t i = 0; i < head_.size(); ++i) {
      entries_.push_back({tail[i], layout_source.entries_[i].rid});
    }
  }

  AIDX_DEFAULT_MOVE_ONLY(CrackerMap);

  /// Cracks on the predicate's bounds and returns the contiguous position
  /// range of qualifying tuples. Deterministic: two maps with identical
  /// initial content that apply the same operation sequence have identical
  /// layouts (the property alignment relies on).
  PositionRange Select(const RangePredicate<T>& pred) {
    ++stats_.num_selects;
    if (pred.DefinitelyEmpty()) return {0, 0};
    const PredicateCuts<T> cuts = CutsForPredicate(pred);
    std::size_t begin = 0;
    std::size_t end = head_.size();
    if (cuts.has_lower && cuts.has_upper) {
      const CutLookup<T> lo = index_.Lookup(cuts.lower);
      const CutLookup<T> hi = index_.Lookup(cuts.upper);
      if (!lo.exact && !hi.exact && lo.piece.begin == hi.piece.begin &&
          lo.piece.end == hi.piece.end && !(cuts.upper < cuts.lower) &&
          !(cuts.lower == cuts.upper)) {
        const auto& piece = lo.piece;
        const ThreeWaySplit split = CrackInThree<T, Entry>(
            HeadIn(piece.begin, piece.end), EntriesIn(piece.begin, piece.end),
            cuts.lower, cuts.upper, kernel_, predication_min_piece_);
        ++stats_.num_cracks;
        stats_.values_touched +=
            CrackInThreeValuesTouched(piece.end - piece.begin);
        index_.AddCut(cuts.lower, piece.begin + split.lower_end);
        index_.AddCut(cuts.upper, piece.begin + split.middle_end);
        return {piece.begin + split.lower_end, piece.begin + split.middle_end};
      }
    }
    if (cuts.has_lower) begin = ResolveCut(cuts.lower);
    if (cuts.has_upper) end = ResolveCut(cuts.upper);
    if (end < begin) end = begin;
    return {begin, end};
  }

  /// Inserts (head, tail, rid) into the piece its head value belongs to,
  /// cascading one element per downstream piece boundary into the slot
  /// freed by its right neighbour (SIGMOD'07 ripple insert, tandem form).
  void RippleInsert(T head, TailT tail, row_id_t rid) {
    const std::size_t old_size = head_.size();
    const PieceInfo<T> piece = index_.PieceForValue(head);
    std::vector<std::size_t> boundaries;
    if (piece.upper.has_value()) {
      index_.VisitCutsFrom(*piece.upper, [&](const Cut<T>&, std::size_t& pos) {
        boundaries.push_back(pos);
      });
    }
    head_.push_back(head);  // placeholder; overwritten unless no cascade
    entries_.push_back({tail, rid});
    std::size_t hole = old_size;
    for (auto it = boundaries.rbegin(); it != boundaries.rend(); ++it) {
      const std::size_t b = *it;
      if (hole != b) {
        head_[hole] = head_[b];
        entries_[hole] = entries_[b];
        ++stats_.ripple_element_moves;
      }
      hole = b;
    }
    head_[hole] = head;
    entries_[hole] = {tail, rid};
    if (piece.upper.has_value()) {
      index_.VisitCutsFrom(*piece.upper,
                           [](const Cut<T>&, std::size_t& pos) { ++pos; });
    }
    index_.set_column_size(old_size + 1);
    ++stats_.inserts_applied;
  }

  /// Removes the tuple with row id `rid` (whose head value is `head` — the
  /// piece lookup key) by cascading the last element of each downstream
  /// piece into the hole, shrinking the map by one. Returns false when no
  /// tuple in the head value's piece carries the rid.
  bool RippleDelete(T head, row_id_t rid) {
    const std::size_t old_size = head_.size();
    const PieceInfo<T> piece = index_.PieceForValue(head);
    std::size_t pos = piece.end;
    for (std::size_t i = piece.begin; i < piece.end; ++i) {
      if (entries_[i].rid != rid) continue;
      AIDX_DCHECK(head_[i] == head);
      pos = i;
      break;
    }
    if (pos == piece.end) return false;

    std::vector<std::size_t> boundaries;
    if (piece.upper.has_value()) {
      index_.VisitCutsFrom(*piece.upper, [&](const Cut<T>&, std::size_t& p) {
        boundaries.push_back(p);
      });
    }
    std::size_t hole = pos;
    const auto move_last = [&](std::size_t end) {
      if (hole != end - 1) {
        head_[hole] = head_[end - 1];
        entries_[hole] = entries_[end - 1];
        ++stats_.ripple_element_moves;
      }
      hole = end - 1;
    };
    move_last(boundaries.empty() ? old_size : boundaries.front());
    for (std::size_t j = 0; j < boundaries.size(); ++j) {
      move_last(j + 1 < boundaries.size() ? boundaries[j + 1] : old_size);
    }
    AIDX_DCHECK(hole == old_size - 1);
    head_.pop_back();
    entries_.pop_back();
    if (piece.upper.has_value()) {
      index_.VisitCutsFrom(*piece.upper,
                           [](const Cut<T>&, std::size_t& p) { --p; });
    }
    index_.set_column_size(old_size - 1);
    ++stats_.deletes_applied;
    return true;
  }

  std::span<const T> head() const { return head_; }
  TailT tail_at(std::size_t i) const {
    AIDX_DCHECK(i < entries_.size());
    return entries_[i].tail;
  }
  row_id_t rid_at(std::size_t i) const {
    AIDX_DCHECK(i < entries_.size());
    return entries_[i].rid;
  }
  std::size_t size() const { return head_.size(); }
  const CrackerIndex<T>& index() const { return index_; }
  const CrackerMapStats& stats() const { return stats_; }

  /// Payload bytes this map pins (the unit of the storage budget).
  std::size_t MemoryUsageBytes() const {
    return head_.capacity() * sizeof(T) + entries_.capacity() * sizeof(Entry);
  }

  /// Piece invariants over the head column. O(n); tests only.
  bool Validate() const {
    if (!index_.Validate() || index_.column_size() != head_.size()) return false;
    if (entries_.size() != head_.size()) return false;
    bool ok = true;
    index_.VisitPieces([&](const PieceInfo<T>& piece) {
      for (std::size_t i = piece.begin; i < piece.end && ok; ++i) {
        if (piece.lower && piece.lower->Below(head_[i])) ok = false;
        if (piece.upper && !piece.upper->Below(head_[i])) ok = false;
      }
    });
    return ok;
  }

 private:
  std::span<T> HeadIn(std::size_t b, std::size_t e) {
    return std::span<T>(head_).subspan(b, e - b);
  }
  std::span<Entry> EntriesIn(std::size_t b, std::size_t e) {
    return std::span<Entry>(entries_).subspan(b, e - b);
  }

  std::size_t ResolveCut(const Cut<T>& cut) {
    const CutLookup<T> look = index_.Lookup(cut);
    if (look.exact) return look.position;
    const auto& piece = look.piece;
    const std::size_t split =
        piece.begin + CrackInTwo<T, Entry>(HeadIn(piece.begin, piece.end),
                                           EntriesIn(piece.begin, piece.end),
                                           cut, kernel_,
                                           predication_min_piece_);
    ++stats_.num_cracks;
    stats_.values_touched += piece.end - piece.begin;
    index_.AddCut(cut, split);
    return split;
  }

  CrackKernel kernel_ = CrackKernel::kAuto;
  std::size_t predication_min_piece_ = 0;
  std::vector<T> head_;
  std::vector<Entry> entries_;
  CrackerIndex<T> index_;
  CrackerMapStats stats_;
};

}  // namespace aidx
