// Sideways cracking: multi-column select-project queries over a set of
// cracker maps kept consistent by adaptive alignment (SIGMOD 2009).
//
// One SidewaysCracker serves one head (selection) attribute A and any
// number of tail (projection) attributes B1..Bk:
//   * map M_{A,Bi} is materialized lazily, the first time a query projects
//     Bi — only queried columns ever pay storage (partial indexing);
//   * every select predicate — and, in table-backed mode, every row insert
//     and delete — is appended to a shared *operation log*; a map is
//     aligned by replaying the log entries it has not applied yet, which
//     reproduces the exact same physical layout in every map (adaptive
//     alignment) so positions correspond across maps row by row;
//   * a map that joins a cohort whose log already contains updates cannot
//     be rebuilt by replay (an interleaved crack/ripple history is not
//     reproducible from the current base), so it *clones* a fully-aligned
//     sibling's layout and regathers its own tail values by rid;
//   * a storage budget (partial sideways cracking) caps the bytes pinned by
//     maps; least-recently-used maps are evicted and rebuilt on demand.
//
// Two construction modes:
//   * span-based: borrows immutable base columns (benches, ablations) —
//     DML is not available, the log holds only predicates;
//   * table-backed: fetches column spans from a Table on demand, so the
//     cracker survives base reallocation and ApplyInsert / ApplyDelete keep
//     the maps maintained *incrementally* under row-atomic DML
//     (update-aware sideways cracking; the Database facade uses this mode).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sideways/cracker_map.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "storage/types.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

/// Workload-facing counters.
struct SidewaysStats {
  std::size_t num_queries = 0;
  std::size_t maps_created = 0;
  std::size_t maps_cloned = 0;  // of maps_created, built by cohort clone
  std::size_t maps_evicted = 0;
  std::size_t alignment_replays = 0;  // select log entries replayed for catch-up
  std::size_t dml_inserts = 0;
  std::size_t dml_deletes = 0;
};

/// Result of a select-project: one value vector per requested tail column,
/// all the same length, row-aligned.
template <ColumnValue T>
struct ProjectionResult {
  std::size_t num_rows = 0;
  std::vector<std::string> column_names;
  std::vector<std::vector<T>> columns;
};

template <ColumnValue T>
class SidewaysCracker {
 public:
  struct Options {
    /// Maximum bytes of cracker-map storage (partial sideways cracking).
    /// Unlimited by default.
    std::size_t storage_budget_bytes = std::numeric_limits<std::size_t>::max();
    /// When true, every registered map is realigned after every query
    /// (the eager strategy the adaptive-alignment ablation compares against).
    bool eager_alignment = false;
    /// Crack kernel applied by every map (head and tail move in tandem, so
    /// this exercises the kernels' payload path; core/crack_ops.h).
    CrackKernel kernel = CrackKernel::kAuto;
    /// Branchy-fallback piece threshold; 0 = calibrated process default.
    std::size_t predication_min_piece = 0;
  };

  /// Span mode: borrows the base columns; they must outlive the cracker and
  /// must not change. DML entry points are unavailable in this mode.
  SidewaysCracker(std::span<const T> head, Options options = {})
      : options_(options), head_(head) {}

  /// Table-backed mode: spans are fetched from `table` (which must outlive
  /// the cracker) on demand; ApplyInsert / ApplyDelete feed row-atomic DML
  /// into the operation log so cracked investment survives writes.
  SidewaysCracker(Table* table, std::string head_name, Options options = {})
      : options_(options), table_(table), head_name_(std::move(head_name)) {
    AIDX_CHECK(table_ != nullptr) << "table-backed cracker needs a table";
  }

  AIDX_DEFAULT_MOVE_ONLY(SidewaysCracker);

  /// Registers a tail column in span mode (no map materialized yet).
  Status AddTailColumn(std::string name, std::span<const T> tail) {
    AIDX_CHECK(table_ == nullptr) << "span registration on a table-backed cracker";
    if (tail.size() != head_.size()) {
      return Status::InvalidArgument("tail '" + name + "' has " +
                                     std::to_string(tail.size()) + " rows, head has " +
                                     std::to_string(head_.size()));
    }
    if (IsRegistered(name)) {
      return Status::AlreadyExists("tail '" + name + "' already registered");
    }
    legacy_tails_.emplace(name, tail);
    tail_order_.push_back(std::move(name));
    return Status::OK();
  }

  /// Registers a tail column in table-backed mode; the span is fetched per
  /// access, so later base growth needs no re-registration.
  Status AddTailColumn(std::string name) {
    AIDX_CHECK(table_ != nullptr) << "named registration needs a table-backed cracker";
    if (name == head_name_) {
      return Status::InvalidArgument("tail '" + name + "' is the head column");
    }
    AIDX_RETURN_NOT_OK(table_->template GetTypedColumn<T>(name).status());
    if (IsRegistered(name)) {
      return Status::AlreadyExists("tail '" + name + "' already registered");
    }
    tail_order_.push_back(std::move(name));
    return Status::OK();
  }

  /// Registered tail names, registration order. ApplyInsert's tail values
  /// arrive in exactly this order.
  const std::vector<std::string>& registered_tails() const { return tail_order_; }

  /// Logs a row insert (table-backed mode): the base row (rid, head_value,
  /// tails in registered_tails() order) has just been appended to the
  /// table. O(1) here; each live map folds the insert in (ripple move) the
  /// next time it is touched.
  void ApplyInsert(row_id_t rid, T head_value, std::vector<T> tails) {
    (void)failpoints::sideways_ripple.Inject();  // delay-only: apply phase
    AIDX_CHECK(table_ != nullptr) << "DML on a span-mode sideways cracker";
    AIDX_CHECK(tails.size() == tail_order_.size())
        << "insert carries " << tails.size() << " tails, " << tail_order_.size()
        << " registered";
    LogOp op;
    op.kind = LogOp::Kind::kInsert;
    op.rid = rid;
    op.head_value = head_value;
    op.tails = std::move(tails);
    ops_.push_back(std::move(op));
    ++num_dml_ops_;
    ++stats_.dml_inserts;
  }

  /// Logs a row delete (table-backed mode): the base row (rid, head_value)
  /// is about to be erased from the table.
  void ApplyDelete(row_id_t rid, T head_value) {
    (void)failpoints::sideways_ripple.Inject();  // delay-only: apply phase
    AIDX_CHECK(table_ != nullptr) << "DML on a span-mode sideways cracker";
    LogOp op;
    op.kind = LogOp::Kind::kDelete;
    op.rid = rid;
    op.head_value = head_value;
    ops_.push_back(std::move(op));
    ++num_dml_ops_;
    ++stats_.dml_deletes;
  }

  /// σ_pred(A) with projection of `tail_names`: returns row-aligned value
  /// vectors. Cracks (and aligns) every involved map as a side effect.
  Result<ProjectionResult<T>> SelectProject(const RangePredicate<T>& pred,
                                            const std::vector<std::string>& tail_names) {
    // Fires before the query logs or touches any map, so an injected error
    // leaves the cracker exactly as it was.
    AIDX_RETURN_NOT_OK(failpoints::sideways_select.Inject());
    ++stats_.num_queries;
    if (tail_names.empty()) {
      return Status::InvalidArgument("select-project needs at least one tail column");
    }
    // The query's predicate joins the log; maps catch up to the full log.
    LogSelect(pred);
    std::vector<MapEntry*> entries;
    entries.reserve(tail_names.size());
    for (const std::string& name : tail_names) {
      AIDX_ASSIGN_OR_RETURN(MapEntry * entry, GetOrCreateMap(name, tail_names));
      entries.push_back(entry);
    }
    ProjectionResult<T> out;
    out.column_names = tail_names;
    bool first = true;
    PositionRange range{0, 0};
    for (MapEntry* entry : entries) {
      Align(entry);
      // After alignment the predicate's cuts exist; Select just looks up.
      const PositionRange r = entry->map->Select(pred);
      if (first) {
        range = r;
        out.num_rows = r.size();
        first = false;
      } else {
        // Alignment guarantees identical layouts across maps.
        AIDX_CHECK(r.begin == range.begin && r.end == range.end)
            << "maps diverged: alignment invariant broken";
      }
      auto& column = out.columns.emplace_back();
      column.reserve(r.size());
      for (std::size_t i = r.begin; i < r.end; ++i) {
        column.push_back(entry->map->tail_at(i));
      }
    }
    if (options_.eager_alignment) AlignAll();
    return out;
  }

  /// σ_pred(A) aggregating SUM(tail): the single-map fast path.
  Result<long double> SelectSum(const RangePredicate<T>& pred,
                                const std::string& tail_name) {
    ++stats_.num_queries;
    LogSelect(pred);
    AIDX_ASSIGN_OR_RETURN(MapEntry * entry, GetOrCreateMap(tail_name, {tail_name}));
    Align(entry);
    const PositionRange r = entry->map->Select(pred);
    long double sum = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) sum += entry->map->tail_at(i);
    if (options_.eager_alignment) AlignAll();
    return sum;
  }

  /// Multi-attribute selection σ_head_pred(A) ∧ σ_tail_pred(B) using map
  /// M_AB (SIGMOD'09 multi-selection processing): the head predicate is
  /// answered by cracking — a contiguous candidate range — and the tail
  /// predicate filters that range's co-located tail values, no row-id
  /// gathers involved.
  Result<std::size_t> SelectCountWhere(const RangePredicate<T>& head_pred,
                                       const std::string& tail_name,
                                       const RangePredicate<T>& tail_pred) {
    ++stats_.num_queries;
    LogSelect(head_pred);
    AIDX_ASSIGN_OR_RETURN(MapEntry * entry, GetOrCreateMap(tail_name, {tail_name}));
    Align(entry);
    const PositionRange r = entry->map->Select(head_pred);
    std::size_t count = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      count += tail_pred.Matches(entry->map->tail_at(i)) ? 1 : 0;
    }
    if (options_.eager_alignment) AlignAll();
    return count;
  }

  const SidewaysStats& stats() const { return stats_; }
  /// Select predicates logged so far (DML log entries not included).
  std::size_t tape_length() const { return num_select_ops_; }
  std::size_t num_live_maps() const { return maps_.size(); }
  /// Read-only view of a live map, nullptr when not materialized. Tests
  /// inspect piece counts and layouts through this.
  const CrackerMap<T>* PeekMap(const std::string& name) const {
    const auto it = maps_.find(name);
    return it == maps_.end() ? nullptr : it->second.map.get();
  }
  /// Bytes an incoming map would pin at the current base size.
  std::size_t per_map_bytes() const { return PerMapBytes(); }
  std::size_t MemoryUsageBytes() const {
    std::size_t total = 0;
    for (const auto& [_, e] : maps_) total += e.map->MemoryUsageBytes();
    return total;
  }

  /// All live maps must satisfy piece invariants and have a log position
  /// within the log. O(maps × n); tests only.
  bool Validate() const {
    for (const auto& [name, entry] : maps_) {
      if (!entry.map->Validate()) return false;
      if (entry.ops_pos > ops_.size()) return false;
    }
    return true;
  }

 private:
  /// One entry of the shared operation log. Selects reorganize, inserts and
  /// deletes ripple; replaying the same sequence from the same start state
  /// is what keeps cohort layouts identical.
  struct LogOp {
    enum class Kind : char { kSelect, kInsert, kDelete };
    Kind kind = Kind::kSelect;
    RangePredicate<T> pred{};          // kSelect
    T head_value{};                    // kInsert / kDelete
    row_id_t rid = 0;                  // kInsert / kDelete
    std::vector<T> tails;              // kInsert: registered_tails() order
  };

  struct MapEntry {
    std::unique_ptr<CrackerMap<T>> map;
    std::size_t ops_pos = 0;     // log entries already applied
    std::size_t tail_index = 0;  // position of this tail in tail_order_
    std::uint64_t last_used = 0;
  };

  bool IsRegistered(const std::string& name) const {
    return std::find(tail_order_.begin(), tail_order_.end(), name) !=
           tail_order_.end();
  }

  void LogSelect(const RangePredicate<T>& pred) {
    LogOp op;
    op.kind = LogOp::Kind::kSelect;
    op.pred = pred;
    ops_.push_back(std::move(op));
    ++num_select_ops_;
  }

  std::size_t BaseRows() const {
    return table_ != nullptr ? table_->num_rows() : head_.size();
  }

  Result<std::span<const T>> HeadSpan() const {
    if (table_ == nullptr) return head_;
    AIDX_ASSIGN_OR_RETURN(const TypedColumn<T>* col,
                          table_->template GetTypedColumn<T>(head_name_));
    return col->Values();
  }

  Result<std::span<const T>> TailSpan(const std::string& name) const {
    if (table_ == nullptr) {
      const auto it = legacy_tails_.find(name);
      AIDX_CHECK(it != legacy_tails_.end());
      return it->second;
    }
    AIDX_ASSIGN_OR_RETURN(const TypedColumn<T>* col,
                          table_->template GetTypedColumn<T>(name));
    return col->Values();
  }

  /// Builds the tail vector for a cohort clone: the sibling's layout gives
  /// (position -> rid); the base gives (rid -> tail value).
  Result<std::vector<T>> GatherTailByRid(const CrackerMap<T>& sibling,
                                         std::span<const T> tail_span) {
    AIDX_CHECK(table_ != nullptr);
    const std::span<const row_id_t> base_rids = table_->row_ids();
    AIDX_CHECK(base_rids.size() == tail_span.size());
    AIDX_CHECK(sibling.size() == tail_span.size())
        << "clone source not fully aligned: " << sibling.size() << " vs "
        << tail_span.size();
    std::unordered_map<row_id_t, std::size_t> pos_of;
    pos_of.reserve(base_rids.size());
    for (std::size_t i = 0; i < base_rids.size(); ++i) {
      pos_of.emplace(base_rids[i], i);
    }
    std::vector<T> out(sibling.size());
    for (std::size_t i = 0; i < sibling.size(); ++i) {
      const auto it = pos_of.find(sibling.rid_at(i));
      AIDX_CHECK(it != pos_of.end()) << "map rid missing from base";
      out[i] = tail_span[it->second];
    }
    return out;
  }

  /// `pinned` names may not be evicted: they belong to the in-flight query
  /// (pointers to their entries are live).
  Result<MapEntry*> GetOrCreateMap(const std::string& name,
                                   const std::vector<std::string>& pinned) {
    const auto order_it = std::find(tail_order_.begin(), tail_order_.end(), name);
    if (order_it == tail_order_.end()) {
      return Status::NotFound("no tail column '" + name + "' registered");
    }
    auto map_it = maps_.find(name);
    if (map_it == maps_.end()) {
      AIDX_ASSIGN_OR_RETURN(const auto tail_span, TailSpan(name));
      AIDX_RETURN_NOT_OK(EnsureBudgetFor(PerMapBytes(), pinned));
      MapEntry entry;
      entry.tail_index =
          static_cast<std::size_t>(order_it - tail_order_.begin());
      MapEntry* sibling = nullptr;
      if (num_dml_ops_ > 0 && !maps_.empty()) sibling = &maps_.begin()->second;
      if (sibling != nullptr) {
        // The cohort's layout history includes ripple updates, which a
        // replay from the current base cannot reproduce: clone a fully
        // aligned sibling and regather this tail's values by rid.
        Align(sibling);
        AIDX_ASSIGN_OR_RETURN(std::vector<T> tail,
                              GatherTailByRid(*sibling->map, tail_span));
        entry.map = std::make_unique<CrackerMap<T>>(*sibling->map, std::move(tail));
        entry.ops_pos = ops_.size();
        ++stats_.maps_cloned;
      } else {
        AIDX_ASSIGN_OR_RETURN(const auto head_span, HeadSpan());
        AIDX_CHECK(head_span.size() == tail_span.size())
            << "head/tail desynchronized: " << head_span.size() << " vs "
            << tail_span.size();
        entry.map = std::make_unique<CrackerMap<T>>(
            head_span, tail_span,
            table_ != nullptr ? table_->row_ids() : std::span<const row_id_t>{},
            options_.kernel, options_.predication_min_piece);
        if (num_dml_ops_ == 0) {
          entry.ops_pos = 0;  // a fresh map replays the whole (select) log
        } else {
          // Empty cohort after updates: the base already reflects every
          // logged DML op, so this map defines the cohort layout — replay
          // the selects only, skip the already-applied updates.
          for (const LogOp& op : ops_) {
            if (op.kind != LogOp::Kind::kSelect) continue;
            entry.map->Select(op.pred);
            ++stats_.alignment_replays;
          }
          entry.ops_pos = ops_.size();
        }
      }
      ++stats_.maps_created;
      map_it = maps_.emplace(name, std::move(entry)).first;
    }
    map_it->second.last_used = ++clock_;
    return &map_it->second;
  }

  void Align(MapEntry* entry) {
    while (entry->ops_pos < ops_.size()) {
      const LogOp& op = ops_[entry->ops_pos];
      switch (op.kind) {
        case LogOp::Kind::kSelect:
          entry->map->Select(op.pred);
          ++stats_.alignment_replays;
          break;
        case LogOp::Kind::kInsert:
          entry->map->RippleInsert(op.head_value, op.tails[entry->tail_index],
                                   op.rid);
          break;
        case LogOp::Kind::kDelete: {
          const bool removed = entry->map->RippleDelete(op.head_value, op.rid);
          AIDX_DCHECK(removed) << "logged delete missing from map";
          (void)removed;
          break;
        }
      }
      ++entry->ops_pos;
    }
  }

  void AlignAll() {
    for (auto& [_, entry] : maps_) Align(&entry);
  }

  std::size_t PerMapBytes() const {
    return BaseRows() * CrackerMap<T>::kBytesPerRow;
  }

  /// Evicts LRU maps (never `pinned` ones) until `incoming` extra bytes fit
  /// in the budget.
  Status EnsureBudgetFor(std::size_t incoming,
                         const std::vector<std::string>& pinned) {
    if (incoming > options_.storage_budget_bytes) {
      return Status::ResourceExhausted(
          "storage budget " + std::to_string(options_.storage_budget_bytes) +
          " B cannot hold even one map (" + std::to_string(incoming) + " B)");
    }
    while (MemoryUsageBytes() + incoming > options_.storage_budget_bytes) {
      auto victim = maps_.end();
      for (auto it = maps_.begin(); it != maps_.end(); ++it) {
        if (std::find(pinned.begin(), pinned.end(), it->first) != pinned.end()) {
          continue;
        }
        if (victim == maps_.end() || it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == maps_.end()) {
        return Status::ResourceExhausted(
            "storage budget too small for the maps this query projects");
      }
      maps_.erase(victim);
      ++stats_.maps_evicted;
    }
    return Status::OK();
  }

  Options options_;
  Table* table_ = nullptr;      // table-backed mode; null in span mode
  std::string head_name_;       // table-backed mode
  std::span<const T> head_;     // span mode
  std::vector<std::string> tail_order_;  // registration order, both modes
  std::unordered_map<std::string, std::span<const T>> legacy_tails_;  // span mode
  std::unordered_map<std::string, MapEntry> maps_;
  std::vector<LogOp> ops_;
  std::size_t num_select_ops_ = 0;
  std::size_t num_dml_ops_ = 0;
  SidewaysStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace aidx
