// Sideways cracking: multi-column select-project queries over a set of
// cracker maps kept consistent by adaptive alignment (SIGMOD 2009).
//
// One SidewaysCracker serves one head (selection) attribute A and any
// number of tail (projection) attributes B1..Bk:
//   * map M_{A,Bi} is materialized lazily, the first time a query projects
//     Bi — only queried columns ever pay storage (partial indexing);
//   * every select predicate is appended to a shared *crack tape*; a map is
//     aligned by replaying the tape entries it has not applied yet, which
//     reproduces the exact same physical layout in every map (adaptive
//     alignment) so positions correspond across maps row by row;
//   * a storage budget (partial sideways cracking) caps the bytes pinned by
//     maps; least-recently-used maps are evicted and rebuilt on demand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sideways/cracker_map.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

/// Workload-facing counters.
struct SidewaysStats {
  std::size_t num_queries = 0;
  std::size_t maps_created = 0;
  std::size_t maps_evicted = 0;
  std::size_t alignment_replays = 0;  // tape entries replayed for catch-up
};

/// Result of a select-project: one value vector per requested tail column,
/// all the same length, row-aligned.
template <ColumnValue T>
struct ProjectionResult {
  std::size_t num_rows = 0;
  std::vector<std::string> column_names;
  std::vector<std::vector<T>> columns;
};

template <ColumnValue T>
class SidewaysCracker {
 public:
  struct Options {
    /// Maximum bytes of cracker-map storage (partial sideways cracking).
    /// Unlimited by default.
    std::size_t storage_budget_bytes = std::numeric_limits<std::size_t>::max();
    /// When true, every registered map is realigned after every query
    /// (the eager strategy the adaptive-alignment ablation compares against).
    bool eager_alignment = false;
    /// Crack kernel applied by every map (head and tail move in tandem, so
    /// this exercises the kernels' payload path; core/crack_ops.h).
    CrackKernel kernel = CrackKernel::kBranchy;
  };

  /// Borrows the base columns; they must outlive the cracker.
  SidewaysCracker(std::span<const T> head, Options options = {})
      : options_(options), head_(head) {}

  AIDX_DEFAULT_MOVE_ONLY(SidewaysCracker);

  /// Registers a tail column (no map materialized yet).
  Status AddTailColumn(std::string name, std::span<const T> tail) {
    if (tail.size() != head_.size()) {
      return Status::InvalidArgument("tail '" + name + "' has " +
                                     std::to_string(tail.size()) + " rows, head has " +
                                     std::to_string(head_.size()));
    }
    if (tails_.contains(name)) {
      return Status::AlreadyExists("tail '" + name + "' already registered");
    }
    tails_.emplace(std::move(name), tail);
    return Status::OK();
  }

  /// σ_pred(A) with projection of `tail_names`: returns row-aligned value
  /// vectors. Cracks (and aligns) every involved map as a side effect.
  Result<ProjectionResult<T>> SelectProject(const RangePredicate<T>& pred,
                                            const std::vector<std::string>& tail_names) {
    ++stats_.num_queries;
    if (tail_names.empty()) {
      return Status::InvalidArgument("select-project needs at least one tail column");
    }
    // The query's predicate joins the tape; maps catch up to the full tape.
    tape_.push_back(pred);
    std::vector<MapEntry*> entries;
    entries.reserve(tail_names.size());
    for (const std::string& name : tail_names) {
      AIDX_ASSIGN_OR_RETURN(MapEntry * entry, GetOrCreateMap(name, tail_names));
      entries.push_back(entry);
    }
    ProjectionResult<T> out;
    out.column_names = tail_names;
    bool first = true;
    PositionRange range{0, 0};
    for (MapEntry* entry : entries) {
      Align(entry);
      // After alignment the predicate's cuts exist; Select just looks up.
      const PositionRange r = entry->map->Select(pred);
      if (first) {
        range = r;
        out.num_rows = r.size();
        first = false;
      } else {
        // Alignment guarantees identical layouts across maps.
        AIDX_CHECK(r.begin == range.begin && r.end == range.end)
            << "maps diverged: alignment invariant broken";
      }
      const auto tail = entry->map->tail();
      out.columns.emplace_back(tail.begin() + static_cast<std::ptrdiff_t>(r.begin),
                               tail.begin() + static_cast<std::ptrdiff_t>(r.end));
    }
    if (options_.eager_alignment) AlignAll();
    return out;
  }

  /// σ_pred(A) aggregating SUM(tail): the single-map fast path.
  Result<long double> SelectSum(const RangePredicate<T>& pred,
                                const std::string& tail_name) {
    ++stats_.num_queries;
    tape_.push_back(pred);
    AIDX_ASSIGN_OR_RETURN(MapEntry * entry, GetOrCreateMap(tail_name, {tail_name}));
    Align(entry);
    const PositionRange r = entry->map->Select(pred);
    const auto tail = entry->map->tail();
    long double sum = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) sum += tail[i];
    if (options_.eager_alignment) AlignAll();
    return sum;
  }

  /// Multi-attribute selection σ_head_pred(A) ∧ σ_tail_pred(B) using map
  /// M_AB (SIGMOD'09 multi-selection processing): the head predicate is
  /// answered by cracking — a contiguous candidate range — and the tail
  /// predicate filters that range's co-located tail values, no row-id
  /// gathers involved.
  Result<std::size_t> SelectCountWhere(const RangePredicate<T>& head_pred,
                                       const std::string& tail_name,
                                       const RangePredicate<T>& tail_pred) {
    ++stats_.num_queries;
    tape_.push_back(head_pred);
    AIDX_ASSIGN_OR_RETURN(MapEntry * entry, GetOrCreateMap(tail_name, {tail_name}));
    Align(entry);
    const PositionRange r = entry->map->Select(head_pred);
    const auto tail = entry->map->tail();
    std::size_t count = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      count += tail_pred.Matches(tail[i]) ? 1 : 0;
    }
    if (options_.eager_alignment) AlignAll();
    return count;
  }

  const SidewaysStats& stats() const { return stats_; }
  std::size_t tape_length() const { return tape_.size(); }
  std::size_t num_live_maps() const { return maps_.size(); }
  std::size_t MemoryUsageBytes() const {
    std::size_t total = 0;
    for (const auto& [_, e] : maps_) total += e.map->MemoryUsageBytes();
    return total;
  }

  /// All live maps must satisfy piece invariants and pairwise layout
  /// equality on their applied prefix. O(maps × n); tests only.
  bool Validate() const {
    for (const auto& [name, entry] : maps_) {
      if (!entry.map->Validate()) return false;
      if (entry.tape_pos > tape_.size()) return false;
    }
    return true;
  }

 private:
  struct MapEntry {
    std::unique_ptr<CrackerMap<T>> map;
    std::size_t tape_pos = 0;   // tape entries already applied
    std::uint64_t last_used = 0;
  };

  /// `pinned` names may not be evicted: they belong to the in-flight query
  /// (pointers to their entries are live).
  Result<MapEntry*> GetOrCreateMap(const std::string& name,
                                   const std::vector<std::string>& pinned) {
    const auto tail_it = tails_.find(name);
    if (tail_it == tails_.end()) {
      return Status::NotFound("no tail column '" + name + "' registered");
    }
    auto map_it = maps_.find(name);
    if (map_it == maps_.end()) {
      AIDX_RETURN_NOT_OK(EnsureBudgetFor(PerMapBytes(), pinned));
      MapEntry entry;
      entry.map = std::make_unique<CrackerMap<T>>(head_, tail_it->second,
                                                  options_.kernel);
      entry.tape_pos = 0;  // a fresh map replays the whole tape
      ++stats_.maps_created;
      map_it = maps_.emplace(name, std::move(entry)).first;
    }
    map_it->second.last_used = ++clock_;
    return &map_it->second;
  }

  void Align(MapEntry* entry) {
    while (entry->tape_pos < tape_.size()) {
      entry->map->Select(tape_[entry->tape_pos]);
      ++entry->tape_pos;
      ++stats_.alignment_replays;
    }
  }

  void AlignAll() {
    for (auto& [_, entry] : maps_) Align(&entry);
  }

  std::size_t PerMapBytes() const { return head_.size() * 2 * sizeof(T); }

  /// Evicts LRU maps (never `pinned` ones) until `incoming` extra bytes fit
  /// in the budget.
  Status EnsureBudgetFor(std::size_t incoming,
                         const std::vector<std::string>& pinned) {
    if (incoming > options_.storage_budget_bytes) {
      return Status::ResourceExhausted(
          "storage budget " + std::to_string(options_.storage_budget_bytes) +
          " B cannot hold even one map (" + std::to_string(incoming) + " B)");
    }
    while (MemoryUsageBytes() + incoming > options_.storage_budget_bytes) {
      auto victim = maps_.end();
      for (auto it = maps_.begin(); it != maps_.end(); ++it) {
        if (std::find(pinned.begin(), pinned.end(), it->first) != pinned.end()) {
          continue;
        }
        if (victim == maps_.end() || it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == maps_.end()) {
        return Status::ResourceExhausted(
            "storage budget too small for the maps this query projects");
      }
      maps_.erase(victim);
      ++stats_.maps_evicted;
    }
    return Status::OK();
  }

  Options options_;
  std::span<const T> head_;
  std::unordered_map<std::string, std::span<const T>> tails_;
  std::unordered_map<std::string, MapEntry> maps_;
  std::vector<RangePredicate<T>> tape_;
  SidewaysStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace aidx
