// Cracking under updates (Idreos, Kersten, Manegold — SIGMOD 2007,
// "Updating a Cracked Database").
//
// Updates are queued in pending stores and folded into the cracked array
// *adaptively, during query processing* — the same philosophy as cracking
// itself: the query that needs a key range pays (only) for bringing that
// range up to date. Three merge policies are reproduced:
//
//   kComplete (MCI): the first query after updates merges the entire
//       pending set — simple, but spikes that query's latency;
//   kGradual (MGI): merges what the query needs plus a fixed budget of
//       additional pending tuples, draining the queue over several queries;
//   kRipple (MRI): merges exactly the pending tuples the query's range
//       needs, using ripple moves: inserting a value into piece k shifts
//       one element per downstream piece boundary instead of shifting the
//       whole array tail — O(#pieces) element moves per tuple.
//
// All three policies use the ripple mechanism for the physical move; they
// differ in *when* and *how much* they merge, which is what the SIGMOD'07
// experiments (and bench_e4_updates) compare.
//
// Deletes come in two addressing modes: by (value, row id) — the SIGMOD'07
// tuple-precise form — and by value alone (DeleteValue), which removes an
// arbitrary occurrence and is what the engine's multiset-semantics DML
// surface uses. Row ids are optional; value-addressed updates work without
// them, rid-addressed deletes require them.
//
// The ripple mechanism extends to tandem pairs: sideways cracker maps
// (sideways/cracker_map.h) apply the same RippleInsert/RippleDelete moves
// with the projected tail value and rid riding as the kernel payload,
// which is what keeps maps maintainable under row-atomic DML instead of
// being dropped on every write.
#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "core/cracker_column.h"
#include "core/cut_interval_set.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// When pending updates get folded into the cracked array.
enum class MergePolicy : char {
  kComplete,  // MCI: everything at the next query
  kGradual,   // MGI: query's range + a fixed extra budget per query
  kRipple,    // MRI: exactly the query's range
};

inline const char* MergePolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kComplete:
      return "MCI";
    case MergePolicy::kGradual:
      return "MGI";
    case MergePolicy::kRipple:
      return "MRI";
  }
  return "?";
}

/// Update-merge counters for the benchmark harness.
struct UpdateStats {
  std::size_t inserts_queued = 0;
  std::size_t deletes_queued = 0;
  std::size_t deletes_cancelled = 0;  // delete hit a still-pending insert
  std::size_t inserts_merged = 0;
  std::size_t deletes_merged = 0;
  std::size_t ripple_element_moves = 0;
};

/// Sentinel row id marking a pending delete addressed by value only.
inline constexpr row_id_t kPendingNoRid = std::numeric_limits<row_id_t>::max();

/// A cracker column that additionally accepts inserts and deletes.
///
/// Fresh inserts receive monotonically increasing row ids (tracked even
/// when row-id storage is disabled, so callers can use the returned ids as
/// stable handles only when row ids are on).
template <ColumnValue T>
class UpdatableCrackerColumn : public CrackerColumn<T> {
 public:
  struct Options {
    MergePolicy policy = MergePolicy::kRipple;
    /// Extra pending tuples merged per query under kGradual.
    std::size_t gradual_budget = 64;
    CrackerColumnOptions crack{};
  };

  explicit UpdatableCrackerColumn(std::span<const T> base, Options options = {})
      : CrackerColumn<T>(base, options.crack),
        options_(options),
        next_row_id_(static_cast<row_id_t>(base.size())) {}

  /// Adopts pre-existing arrays without copying (partitioned columns hand
  /// their shards over this way). Fresh inserts are assigned row ids from
  /// `first_fresh_rid` unless the caller supplies explicit ids.
  UpdatableCrackerColumn(std::vector<T> values, std::vector<row_id_t> row_ids,
                         Options options, row_id_t first_fresh_rid)
      : CrackerColumn<T>(std::move(values), std::move(row_ids), options.crack),
        options_(options),
        next_row_id_(first_fresh_rid) {}

  /// Queues an insert; returns the new tuple's row id.
  row_id_t Insert(T value) {
    const row_id_t rid = next_row_id_++;
    InsertWithRid(value, rid);
    return rid;
  }

  /// Queues an insert carrying a caller-chosen row id (partitioned columns
  /// allocate globally unique ids outside the shard).
  void InsertWithRid(T value, row_id_t rid) {
    if (rid != kPendingNoRid && rid >= next_row_id_) next_row_id_ = rid + 1;
    pending_inserts_.push_back({value, rid});
    ++stats_.inserts_queued;
  }

  /// Queues a delete of the tuple (value, rid). If the tuple is still a
  /// pending insert the two cancel immediately. Returns false when the
  /// tuple was already queued for deletion (double delete). Requires row
  /// ids; use DeleteValue on columns built without them.
  bool Delete(T value, row_id_t rid) {
    AIDX_CHECK(this->options().with_row_ids) << "rid deletes need row ids";
    for (std::size_t i = 0; i < pending_inserts_.size(); ++i) {
      if (pending_inserts_[i].rid == rid) {
        AIDX_DCHECK(pending_inserts_[i].value == value);
        pending_inserts_[i] = pending_inserts_.back();
        pending_inserts_.pop_back();
        ++stats_.deletes_cancelled;
        return true;
      }
    }
    for (const PendingTuple& d : pending_deletes_) {
      if (d.rid == rid) return false;
    }
    pending_deletes_.push_back({value, rid});
    ++stats_.deletes_queued;
    return true;
  }

  /// Queues a delete of one (arbitrary) live tuple equal to `value`:
  /// cancels a pending insert when one matches, otherwise verifies a live
  /// occurrence exists in the cracked array (cracking on [value, value] as
  /// a side effect — a delete is a query here too) before queueing.
  /// Returns false when no live tuple carries the value.
  bool DeleteValue(T value) {
    for (std::size_t i = 0; i < pending_inserts_.size(); ++i) {
      if (pending_inserts_[i].value == value) {
        pending_inserts_[i] = pending_inserts_.back();
        pending_inserts_.pop_back();
        ++stats_.deletes_cancelled;
        return true;
      }
    }
    const auto point = RangePredicate<T>::Between(value, value);
    const CrackSelect sel = CrackerColumn<T>::Select(point);
    std::vector<std::size_t> positions;  // live occurrences of `value`
    for (std::size_t p = sel.core.begin; p < sel.core.end; ++p) {
      positions.push_back(p);
    }
    for (int e = 0; e < sel.num_edges; ++e) {
      for (std::size_t p = sel.edges[e].begin; p < sel.edges[e].end; ++p) {
        if (this->values()[p] == value) positions.push_back(p);
      }
    }
    // Count queued deletes that can actually claim one of those tuples:
    // value-addressed ones always can; rid-addressed ones only when their
    // rid is present (a rid-delete of a nonexistent tuple — dropped
    // silently at merge time — must not block a real delete).
    std::size_t already_claimed = 0;
    for (const PendingTuple& d : pending_deletes_) {
      if (d.value != value) continue;
      if (d.rid == kPendingNoRid) {
        ++already_claimed;
        continue;
      }
      for (const std::size_t p : positions) {
        if (this->row_ids()[p] == d.rid) {
          ++already_claimed;
          break;
        }
      }
    }
    if (positions.size() <= already_claimed) return false;
    pending_deletes_.push_back({value, kPendingNoRid});
    ++stats_.deletes_queued;
    return true;
  }

  /// Rows matching the predicate, after adaptively merging the pending
  /// updates the predicate's range requires.
  std::size_t Count(const RangePredicate<T>& pred) {
    MergeForQuery(pred);
    return CrackerColumn<T>::Count(pred);
  }

  /// Sum of matching values, after adaptive update merging.
  long double Sum(const RangePredicate<T>& pred) {
    MergeForQuery(pred);
    return CrackerColumn<T>::Sum(pred);
  }

  /// Deadline/cancellation-aware variants. The context gates the entry and
  /// the piece-level crack loop; the pending-update merge itself always
  /// rolls forward once started — a merge is row-atomic investment, so an
  /// expiring query parks AFTER it, never inside it.
  Result<std::size_t> Count(const RangePredicate<T>& pred, const QueryContext& ctx) {
    AIDX_RETURN_NOT_OK(ctx.Check());
    MergeForQuery(pred);
    return CrackerColumn<T>::Count(pred, ctx);
  }

  Result<long double> Sum(const RangePredicate<T>& pred, const QueryContext& ctx) {
    AIDX_RETURN_NOT_OK(ctx.Check());
    MergeForQuery(pred);
    return CrackerColumn<T>::Sum(pred, ctx);
  }

  /// Folds the pending updates the predicate's range requires (policy-
  /// dependent) without answering a query. Callers that take raw cracked
  /// positions (Select / Materialize pipelines) use this first so the
  /// positions reflect every update the predicate must observe.
  void MergePendingFor(const RangePredicate<T>& pred) { MergeForQuery(pred); }

  /// True when the predicate's *answer* depends on a pending update — i.e.
  /// when some pending tuple matches the predicate. The striped piece-latch
  /// fast path (docs/CONCURRENCY.md §4) uses this as its slow-path gate.
  /// Deliberately policy-independent: kComplete and kGradual merge beyond
  /// the predicate's range *when a merge happens*, but a query whose range
  /// overlaps no pending key is exact without any merge, so it must not pay
  /// the coarse path under any policy. Caller-synchronized, like every
  /// other method.
  bool NeedsMergeFor(const RangePredicate<T>& pred) const {
    if (pending_inserts_.empty() && pending_deletes_.empty()) return false;
    const auto matches = [&](const PendingTuple& t) {
      return pred.Matches(t.value);
    };
    return std::any_of(pending_inserts_.begin(), pending_inserts_.end(),
                       matches) ||
           std::any_of(pending_deletes_.begin(), pending_deletes_.end(),
                       matches);
  }

  bool has_pending() const {
    return !pending_inserts_.empty() || !pending_deletes_.empty();
  }

  /// Read-only enumeration of the pending stores, for the striped write
  /// path's overlay reads and existence probes (which may only hold the
  /// shard's structural latch shared — the stores mutate only under
  /// structural exclusive). `fn(value, rid)` per tuple.
  template <typename Fn>
  void ForEachPendingInsert(Fn&& fn) const {
    for (const PendingTuple& t : pending_inserts_) fn(t.value, t.rid);
  }
  template <typename Fn>
  void ForEachPendingDelete(Fn&& fn) const {
    for (const PendingTuple& t : pending_deletes_) fn(t.value, t.rid);
  }

  /// Adopts an insert that was already counted as queued by an outer
  /// buffer (the partitioned column's striped write buckets): identical to
  /// InsertWithRid minus the inserts_queued bump, so draining a buffer
  /// never double-counts.
  void AdoptPendingInsert(T value, row_id_t rid) {
    if (rid != kPendingNoRid && rid >= next_row_id_) next_row_id_ = rid + 1;
    pending_inserts_.push_back({value, rid});
  }

  /// Adopts a value-addressed delete that was already counted as queued by
  /// an outer buffer. Cancels a matching pending insert when one exists
  /// (counted as a cancellation — the claimed tuple never reaches the
  /// array), otherwise queues the delete without re-counting it. The outer
  /// buffer verified a live occurrence at enqueue time.
  void AdoptPendingDeleteValue(T value) {
    for (std::size_t i = 0; i < pending_inserts_.size(); ++i) {
      if (pending_inserts_[i].value == value) {
        pending_inserts_[i] = pending_inserts_.back();
        pending_inserts_.pop_back();
        ++stats_.deletes_cancelled;
        return;
      }
    }
    pending_deletes_.push_back({value, kPendingNoRid});
  }

  /// Merges up to `max_tuples` pending updates (oldest-first, deletes
  /// before inserts) regardless of any predicate — the chunk primitive the
  /// background-merge mode machine runs between latch releases so readers
  /// never wait behind one long exclusive hold.
  void MergePendingBudget(std::size_t max_tuples) {
    if (max_tuples == 0) return;
    MergeMatching([](const PendingTuple&) { return false; }, max_tuples);
  }

  std::size_t num_pending_inserts() const { return pending_inserts_.size(); }
  std::size_t num_pending_deletes() const { return pending_deletes_.size(); }
  /// Logical tuple count: merged array plus pending inserts minus pending
  /// (still physically present) deletes.
  std::size_t live_size() const {
    return this->size() + pending_inserts_.size() - pending_deletes_.size();
  }
  const UpdateStats& update_stats() const { return stats_; }
  MergePolicy policy() const { return options_.policy; }

  /// Piece invariants plus pending-store sanity.
  bool Validate() const {
    if (!this->ValidatePieces()) return false;
    for (const PendingTuple& t : pending_inserts_) {
      if (t.rid != kPendingNoRid && t.rid >= next_row_id_) return false;
    }
    return true;
  }

 private:
  struct PendingTuple {
    T value;
    row_id_t rid;
  };

  void MergeForQuery(const RangePredicate<T>& pred) {
    if (pending_inserts_.empty() && pending_deletes_.empty()) return;
    switch (options_.policy) {
      case MergePolicy::kComplete:
        MergeMatching([](const PendingTuple&) { return true; }, 0);
        break;
      case MergePolicy::kGradual:
        MergeMatching([&](const PendingTuple& t) { return pred.Matches(t.value); },
                      options_.gradual_budget);
        break;
      case MergePolicy::kRipple:
        MergeMatching([&](const PendingTuple& t) { return pred.Matches(t.value); }, 0);
        break;
    }
  }

  /// Merges every pending tuple satisfying `needed`, plus up to `extra`
  /// additional tuples (oldest first) to drain the queue.
  template <typename NeedFn>
  void MergeMatching(NeedFn&& needed, std::size_t extra) {
    // Deletes first: a delete can only address an already-merged tuple
    // (insert/delete pairs cancelled at queue time).
    std::size_t extra_left = extra;
    for (std::size_t i = 0; i < pending_deletes_.size();) {
      const bool take = needed(pending_deletes_[i]) ||
                        (extra_left > 0 && (--extra_left, true));
      if (!take) {
        ++i;
        continue;
      }
      RippleDelete(pending_deletes_[i].value, pending_deletes_[i].rid);
      pending_deletes_[i] = pending_deletes_.back();
      pending_deletes_.pop_back();
      ++stats_.deletes_merged;
    }
    for (std::size_t i = 0; i < pending_inserts_.size();) {
      const bool take = needed(pending_inserts_[i]) ||
                        (extra_left > 0 && (--extra_left, true));
      if (!take) {
        ++i;
        continue;
      }
      RippleInsert(pending_inserts_[i].value, pending_inserts_[i].rid);
      pending_inserts_[i] = pending_inserts_.back();
      pending_inserts_.pop_back();
      ++stats_.inserts_merged;
    }
  }

  /// Inserts (value, rid) into its piece by cascading one element per
  /// downstream piece boundary into the slot freed by its right neighbour.
  void RippleInsert(T value, row_id_t rid) {
    auto& values = this->mutable_values();
    auto& rids = this->mutable_row_ids();
    const bool with_rids = this->options().with_row_ids;
    auto& index = this->mutable_index();
    const std::size_t old_size = values.size();
    const PieceInfo<T> piece = index.PieceForValue(value);

    // Boundary positions of every piece to the right of the target piece.
    std::vector<std::size_t> boundaries;
    if (piece.upper.has_value()) {
      index.VisitCutsFrom(*piece.upper, [&](const Cut<T>&, std::size_t& pos) {
        boundaries.push_back(pos);
      });
    }
    values.push_back(value);  // placeholder; overwritten unless no cascade
    if (with_rids) rids.push_back(rid);
    std::size_t hole = old_size;
    for (auto it = boundaries.rbegin(); it != boundaries.rend(); ++it) {
      const std::size_t b = *it;
      if (hole != b) {
        values[hole] = values[b];
        if (with_rids) rids[hole] = rids[b];
        ++stats_.ripple_element_moves;
      }
      hole = b;
    }
    values[hole] = value;
    if (with_rids) rids[hole] = rid;
    if (piece.upper.has_value()) {
      index.VisitCutsFrom(*piece.upper,
                          [](const Cut<T>&, std::size_t& pos) { ++pos; });
    }
    index.set_column_size(old_size + 1);
  }

  /// True when some pending rid-addressed delete targets row id `rid`
  /// (value-addressed deletes must not steal such a tuple).
  bool RidPendingDelete(row_id_t rid) const {
    for (const PendingTuple& d : pending_deletes_) {
      if (d.rid == rid) return true;
    }
    return false;
  }

  /// Removes the tuple (value, rid) — or, when rid is kPendingNoRid, an
  /// arbitrary tuple equal to `value` — by cascading the last element of
  /// each downstream piece into the hole, shrinking the array by one.
  void RippleDelete(T value, row_id_t rid) {
    auto& values = this->mutable_values();
    auto& rids = this->mutable_row_ids();
    const bool with_rids = this->options().with_row_ids;
    auto& index = this->mutable_index();
    const std::size_t old_size = values.size();
    const PieceInfo<T> piece = index.PieceForValue(value);

    // Locate the victim inside its piece. Value-addressed deletes skip
    // tuples claimed by a still-pending rid-addressed delete so the two
    // forms never race for the same physical tuple.
    std::size_t pos = piece.end;
    for (std::size_t i = piece.begin; i < piece.end; ++i) {
      if (rid != kPendingNoRid) {
        if (rids[i] != rid) continue;
        AIDX_DCHECK(values[i] == value);
      } else {
        if (values[i] != value) continue;
        if (with_rids && RidPendingDelete(rids[i])) continue;
      }
      pos = i;
      break;
    }
    if (pos == piece.end) return;  // unknown tuple: drop silently (see tests)

    std::vector<std::size_t> boundaries;
    if (piece.upper.has_value()) {
      index.VisitCutsFrom(*piece.upper, [&](const Cut<T>&, std::size_t& pos_ref) {
        boundaries.push_back(pos_ref);
      });
    }
    // Close the hole with the target piece's last element, then cascade:
    // each downstream piece donates its last element to the position freed
    // on its left, shifting the piece left by one.
    std::size_t hole = pos;
    const auto move_last = [&](std::size_t end) {
      if (hole != end - 1) {
        values[hole] = values[end - 1];
        if (with_rids) rids[hole] = rids[end - 1];
        ++stats_.ripple_element_moves;
      }
      hole = end - 1;
    };
    move_last(boundaries.empty() ? old_size : boundaries.front());
    for (std::size_t j = 0; j < boundaries.size(); ++j) {
      move_last(j + 1 < boundaries.size() ? boundaries[j + 1] : old_size);
    }
    AIDX_DCHECK(hole == old_size - 1);
    values.pop_back();
    if (with_rids) rids.pop_back();
    if (piece.upper.has_value()) {
      index.VisitCutsFrom(*piece.upper,
                          [](const Cut<T>&, std::size_t& pos_ref) { --pos_ref; });
    }
    index.set_column_size(old_size - 1);
  }

  Options options_;
  std::vector<PendingTuple> pending_inserts_;
  std::vector<PendingTuple> pending_deletes_;
  UpdateStats stats_;
  row_id_t next_row_id_;
};

}  // namespace aidx
